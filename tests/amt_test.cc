// AMT-engine-specific tests: the (m,k) tuner, structural invariants under
// load, sequential-load move optimization, write-amplification ordering
// between policies, and the FLSM-emulation mode (paper Sec 6.8).
#include <gtest/gtest.h>

#include "core/amt/amt_tuner.h"
#include "core/db.h"
#include "env/mem_env.h"
#include "util/random.h"

namespace iamdb {
namespace {

// ---------------------------------------------------------------------------
// Tuner unit tests (paper Eq. 1-2)

TEST(AmtTunerTest, EmptyTreeDefaultsToAppendEverything) {
  MixedLevelChoice c = ChooseMixedLevel({}, 10, 3, 1 << 20);
  EXPECT_EQ(1, c.m);
  EXPECT_EQ(3, c.k);
}

TEST(AmtTunerTest, HugeBudgetGoesFullLsa) {
  // Everything fits in memory: m = n+1 (no merging anywhere).
  std::vector<uint64_t> levels = {10 << 20, 100 << 20, 1000 << 20};
  MixedLevelChoice c = ChooseMixedLevel(levels, 10, 3, 10ull << 30);
  EXPECT_EQ(4, c.m);
  EXPECT_EQ(3, c.k);
}

TEST(AmtTunerTest, TinyBudgetDegeneratesToMergeEverywhere) {
  std::vector<uint64_t> levels = {10 << 20, 100 << 20};
  MixedLevelChoice c = ChooseMixedLevel(levels, 10, 3, 0);
  EXPECT_EQ(1, c.m);
  EXPECT_EQ(1, c.k);
}

TEST(AmtTunerTest, PaperShapedConfiguration) {
  // Scaled version of the paper's 1TB data / 64GB memory: levels
  // 10, 100, 1000, 10000 units with budget 640 units.
  // m=3: D1+D2 = 110 <= 640 and S(3,k) = 1000 (k-1)/10.
  //   k=3 -> 110+200 = 310 <= 640: accepted.
  // m=4 would need D1+D2+D3 = 1110 > 640: rejected.
  std::vector<uint64_t> levels = {10, 100, 1000, 10000};
  MixedLevelChoice c = ChooseMixedLevel(levels, 10, 3, 640);
  EXPECT_EQ(3, c.m);
  EXPECT_EQ(3, c.k);
}

TEST(AmtTunerTest, KShrinksBeforeMMovesUp) {
  // m=2 with k=3 needs 10 + 100*2/10 = 30; budget 25 forces k=2
  // (10 + 10 = 20 <= 25).
  std::vector<uint64_t> levels = {10, 100};
  MixedLevelChoice c = ChooseMixedLevel(levels, 10, 3, 25);
  EXPECT_EQ(2, c.m);
  EXPECT_EQ(2, c.k);
}

TEST(AmtTunerTest, EqualityBoundaryAccepted) {
  // Exactly equal to the budget satisfies Eq. 2 (<=).
  std::vector<uint64_t> levels = {10, 100};
  MixedLevelChoice c = ChooseMixedLevel(levels, 10, 3, 30);
  EXPECT_EQ(2, c.m);
  EXPECT_EQ(3, c.k);
}

TEST(AmtTunerTest, LargerBudgetNeverLowersMK) {
  std::vector<uint64_t> levels = {50, 500, 5000};
  MixedLevelChoice prev{0, 0};
  for (uint64_t budget = 0; budget < 12000; budget += 250) {
    MixedLevelChoice c = ChooseMixedLevel(levels, 10, 4, budget);
    // (m, k) is monotone in the budget.
    EXPECT_GE(std::make_pair(c.m, c.k), std::make_pair(prev.m, prev.k))
        << "budget " << budget;
    prev = c;
  }
}

// ---------------------------------------------------------------------------
// Engine behaviour

class AmtEngineTest : public testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.env = &env_;
    options.engine = EngineType::kAmt;
    options.node_capacity = 32 << 10;
    options.block_cache_capacity = 1 << 20;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    return options;
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  // Loads `n` records with 100-byte values; returns final stats.
  DbStats Load(DB* db, int n, bool sequential, uint32_t seed = 7) {
    Random64 rnd(seed);
    std::string value(100, 'v');
    for (int i = 0; i < n; i++) {
      uint64_t k = sequential ? static_cast<uint64_t>(i) : rnd.Next() % 1000000;
      EXPECT_TRUE(db->Put(WriteOptions(), Key(static_cast<int>(k)), value).ok());
    }
    EXPECT_TRUE(db->WaitForQuiescence().ok());
    return db->GetStats();
  }

  MemEnv env_;
};

TEST_F(AmtEngineTest, SequentialLoadIsMoveOnly) {
  Options options = BaseOptions();
  options.amt.policy = AmtPolicy::kLsa;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  DbStats stats = Load(db.get(), 40000, /*sequential=*/true);
  // Every byte written to the tree exactly once: ordered nodes sink by
  // metadata moves (Sec 4.2.1), so total write amp ~= 1 (+ metadata).
  EXPECT_LT(stats.total_write_amp, 1.35) << "sequential load rewrote data";
  EXPECT_GE(stats.total_write_amp, 0.95);
  ASSERT_TRUE(db->CheckInvariants(true).ok());
}

TEST_F(AmtEngineTest, FlsmEmulationRewritesOnSequentialLoad) {
  Options options = BaseOptions();
  options.amt.policy = AmtPolicy::kLsa;
  options.amt.rewrite_on_flush = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db2", &db).ok());
  DbStats stats = Load(db.get(), 40000, /*sequential=*/true);
  // FLSM rewrites records on every level descent (paper Sec 6.8 measured
  // 6.42 at full scale); at our depth expect clearly > 2.
  EXPECT_GT(stats.total_write_amp, 2.0);
}

TEST_F(AmtEngineTest, HashLoadInvariantsHold) {
  for (AmtPolicy policy : {AmtPolicy::kLsa, AmtPolicy::kIam}) {
    Options options = BaseOptions();
    options.amt.policy = policy;
    std::string name =
        policy == AmtPolicy::kLsa ? "/db_lsa" : "/db_iam";
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, name, &db).ok());
    Load(db.get(), 60000, /*sequential=*/false);
    Status s = db->CheckInvariants(true);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
  }
}

TEST_F(AmtEngineTest, WriteAmpOrderingLsaBelowIamBelowMergeHeavy) {
  // Hash load with the same data volume under three policies.  LSA should
  // have the smallest write amp; IAM in between; forced merge-everywhere
  // (fixed m=1, k=1) the largest (paper Table 1).
  auto run = [&](AmtPolicy policy, int fixed_m, const std::string& name) {
    Options options = BaseOptions();
    options.amt.policy = policy;
    if (fixed_m >= 0) {
      options.amt.auto_tune_mk = false;
      options.amt.fixed_mixed_level = fixed_m;
      options.amt.k = 1;
    } else {
      // Generous cache: IAM keeps several appending levels.
      options.block_cache_capacity = 4 << 20;
    }
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, name, &db).ok());
    return Load(db.get(), 60000, /*sequential=*/false).total_write_amp;
  };

  double lsa = run(AmtPolicy::kLsa, -1, "/w_lsa");
  double iam = run(AmtPolicy::kIam, -1, "/w_iam");
  double merge_always = run(AmtPolicy::kIam, 1, "/w_merge");

  EXPECT_LT(lsa, iam * 1.05) << "LSA must not exceed IAM";
  EXPECT_LT(iam, merge_always) << "IAM must beat merge-everywhere";
  EXPECT_LT(lsa, merge_always * 0.7);
}

TEST_F(AmtEngineTest, MixedLevelMergesCapSequenceCount) {
  Options options = BaseOptions();
  options.amt.policy = AmtPolicy::kIam;
  options.amt.auto_tune_mk = false;
  options.amt.fixed_mixed_level = 1;  // L1 is the mixed level
  options.amt.k = 2;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db3", &db).ok());
  Load(db.get(), 60000, /*sequential=*/false);
  // Below the mixed level every node must hold exactly one sequence;
  // verify via stats: mixed level reported as 1.
  DbStats stats = db->GetStats();
  EXPECT_EQ(1, stats.mixed_level);
  EXPECT_EQ(2, stats.mixed_level_k);
  ASSERT_TRUE(db->CheckInvariants(true).ok());
}

TEST_F(AmtEngineTest, DegenerateNoAppendEqualsMergeAlways) {
  // fixed m=1, k=1: every flush below L1 merges; L1 merges at 1 sequence.
  // This is the paper's "IAM degenerates into LSM" configuration; verify
  // it still serves reads correctly.
  Options options = BaseOptions();
  options.amt.policy = AmtPolicy::kIam;
  options.amt.auto_tune_mk = false;
  options.amt.fixed_mixed_level = 1;
  options.amt.k = 1;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db4", &db).ok());
  std::string value(100, 'v');
  for (int i = 0; i < 30000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i % 7000), value).ok());
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  for (int i = 0; i < 7000; i += 113) {
    std::string v;
    EXPECT_TRUE(db->Get(ReadOptions(), Key(i), &v).ok()) << i;
  }
  ASSERT_TRUE(db->CheckInvariants(true).ok());
}

TEST_F(AmtEngineTest, OverwriteReclaimsSpaceViaMerges) {
  // IAM with merging levels reclaims overwritten records; LSA keeps them
  // longer (paper Fig. 10: LSA takes 2.3x more space after overwrite).
  auto run = [&](AmtPolicy policy, const std::string& name) {
    Options options = BaseOptions();
    options.amt.policy = policy;
    options.block_cache_capacity = 64 << 10;  // small: IAM merges low
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, name, &db).ok());
    std::string value(100, 'v');
    for (int round = 0; round < 8; round++) {
      for (int i = 0; i < 5000; i++) {
        EXPECT_TRUE(db->Put(WriteOptions(), Key(i), value).ok());
      }
    }
    EXPECT_TRUE(db->WaitForQuiescence().ok());
    return db->GetStats().space_used_bytes;
  };
  uint64_t iam_space = run(AmtPolicy::kIam, "/s_iam");
  uint64_t lsa_space = run(AmtPolicy::kLsa, "/s_lsa");
  EXPECT_GT(lsa_space, iam_space) << "LSA should retain more dead data";
}

TEST_F(AmtEngineTest, PointReadsAfterDeepTreeFormation) {
  Options options = BaseOptions();
  options.amt.policy = AmtPolicy::kIam;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db5", &db).ok());
  std::string value(100, 'x');
  const int N = 50000;
  for (int i = 0; i < N; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i * 7919 % N), value).ok());
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  DbStats stats = db->GetStats();
  ASSERT_GE(stats.level_node_counts.size(), 3u) << "tree too shallow";
  // Every written key must be readable.
  for (int i = 0; i < N; i += 487) {
    std::string v;
    EXPECT_TRUE(db->Get(ReadOptions(), Key(i), &v).ok()) << Key(i);
  }
}

TEST_F(AmtEngineTest, ParallelCompactionMatchesSerial) {
  auto load_and_dump = [&](int threads, const std::string& name) {
    Options options = BaseOptions();
    options.amt.policy = AmtPolicy::kIam;
    options.background_threads = threads;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, name, &db).ok());
    Random64 rnd(42);
    std::string value(100, 'v');
    for (int i = 0; i < 40000; i++) {
      EXPECT_TRUE(
          db->Put(WriteOptions(), Key(rnd.Next() % 20000), value).ok());
    }
    EXPECT_TRUE(db->WaitForQuiescence().ok());
    EXPECT_TRUE(db->CheckInvariants(true).ok());
    std::map<std::string, std::string> dump;
    std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      dump[iter->key().ToString()] = iter->value().ToString();
    }
    return dump;
  };
  auto serial = load_and_dump(1, "/p1");
  auto parallel = load_and_dump(4, "/p4");
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace iamdb
