// ThrottledEnv: wall time must track modeled device time at the configured
// scale, the shared single-server queue must serialize concurrent I/O, and
// a throttled DB must behave identically (just slower).
#include <gtest/gtest.h>

#include <thread>

#include "core/db.h"
#include "env/mem_env.h"
#include "env/throttled_env.h"

namespace iamdb {
namespace {

TEST(ThrottledEnvTest, ChargesTrackModeledCosts) {
  MemEnv mem;
  DeviceProfile profile = DeviceProfile::HDD();
  ThrottledEnv env(&mem, profile, /*time_scale=*/1e-6);  // effectively free

  ASSERT_TRUE(
      WriteStringToFile(&env, std::string(1 << 20, 'x'), "/f", false).ok());
  // One 1MB write: bandwidth cost ~6.7ms at 150MB/s (plus dispatch share).
  uint64_t after_write = env.charged_micros();
  EXPECT_GE(after_write, 6000u);
  EXPECT_LE(after_write, 10000u);

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());
  char scratch[4096];
  Slice result;
  ASSERT_TRUE(file->Read(0, 4096, &result, scratch).ok());
  // One positional read: ~ one 8ms seek.
  EXPECT_GE(env.charged_micros() - after_write, 8000u);
}

TEST(ThrottledEnvTest, WallTimeScalesWithCharges) {
  MemEnv mem;
  // 10ms of modeled time per positional read at scale 0.05 -> 400us each.
  ThrottledEnv env(&mem, DeviceProfile::HDD(), 0.05);
  ASSERT_TRUE(
      WriteStringToFile(&env, std::string(64 << 10, 'x'), "/f", false).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());

  uint64_t t0 = Env::Default()->NowMicros();
  char scratch[4096];
  Slice result;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(file->Read((i * 4096) % (60 << 10), 4096, &result, scratch).ok());
  }
  uint64_t wall = Env::Default()->NowMicros() - t0;
  // 20 seeks x 8ms x 0.05 = 8ms minimum.
  EXPECT_GE(wall, 7000u);
}

TEST(ThrottledEnvTest, SingleServerSerializesThreads) {
  MemEnv mem;
  ThrottledEnv env(&mem, DeviceProfile::HDD(), 0.05);
  ASSERT_TRUE(
      WriteStringToFile(&env, std::string(64 << 10, 'x'), "/f", false).ok());

  // Two threads x 10 seeks each: a shared device takes ~2x one thread's
  // time, not ~1x (which independent sleeping would give).
  auto reader_work = [&env] {
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env.NewRandomAccessFile("/f", &file).ok());
    char scratch[4096];
    Slice result;
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(file->Read(i * 4096, 4096, &result, scratch).ok());
    }
  };
  uint64_t t0 = Env::Default()->NowMicros();
  std::thread a(reader_work), b(reader_work);
  a.join();
  b.join();
  uint64_t wall = Env::Default()->NowMicros() - t0;
  // 20 seeks x 8ms x 0.05 = 8ms serialized; independent threads would
  // finish in ~4ms.
  EXPECT_GE(wall, 7000u);
}

TEST(ThrottledEnvTest, DbWorksEndToEndWhenThrottled) {
  MemEnv mem;
  ThrottledEnv device(&mem, DeviceProfile::SSD(), 0.01);
  Options options;
  options.env = &device;
  options.engine = EngineType::kAmt;
  options.node_capacity = 16 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 2000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i * 37 % 2000);
    ASSERT_TRUE(db->Put(WriteOptions(), key, std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  ASSERT_TRUE(db->CheckInvariants(true).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key000370", &value).ok());
  EXPECT_GT(device.charged_micros(), 0u);
}

}  // namespace
}  // namespace iamdb
