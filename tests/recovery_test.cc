// Crash-recovery and durability tests: WAL replay, torn-tail tolerance,
// manifest recovery across compactions, obsolete-file GC, and failure
// injection on the CURRENT pointer.
#include <gtest/gtest.h>

#include <map>

#include "core/db.h"
#include "core/filename.h"
#include "env/mem_env.h"
#include "util/random.h"

namespace iamdb {
namespace {

class RecoveryTest : public testing::TestWithParam<EngineType> {
 protected:
  Options MakeOptions() {
    Options options;
    options.env = &env_;
    options.engine = GetParam();
    options.node_capacity = 32 << 10;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    options.leveled.max_bytes_level1 = 128 << 10;
    options.leveled.target_file_size = 16 << 10;
    return options;
  }

  void Open() {
    Options options = MakeOptions();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }
  void Close() { db_.reset(); }
  void Reopen() {
    Close();
    Open();
  }

  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    return s.IsNotFound() ? "NOT_FOUND" : (s.ok() ? value : "ERROR");
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  std::vector<std::string> LiveFiles(FileType want) {
    std::vector<std::string> children, result;
    env_.GetChildren("/db", &children);
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) && type == want) {
        result.push_back(child);
      }
    }
    return result;
  }

  MemEnv env_;
  std::unique_ptr<DB> db_;
};

TEST_P(RecoveryTest, WalOnlyStateSurvivesReopen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "2").ok());
  Reopen();
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("2", Get("b"));
}

TEST_P(RecoveryTest, TornWalTailLosesOnlyTail) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "early", "kept").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "late", "torn").ok());
  Close();

  // Tear the last few bytes off the newest WAL, as a crash mid-write would.
  auto logs = LiveFiles(FileType::kLogFile);
  ASSERT_FALSE(logs.empty());
  std::string newest = "/db/" + logs.back();
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize(newest, &size).ok());
  ASSERT_TRUE(env_.Truncate(newest, size - 3).ok());

  Open();
  EXPECT_EQ("kept", Get("early"));
  EXPECT_EQ("NOT_FOUND", Get("late"));  // torn record dropped
  // The database remains writable afterwards.
  ASSERT_TRUE(db_->Put(WriteOptions(), "late", "rewritten").ok());
  EXPECT_EQ("rewritten", Get("late"));
}

TEST_P(RecoveryTest, StateSurvivesCompactionsAndReopen) {
  Open();
  Random64 rnd(5);
  std::map<std::string, std::string> model;
  std::string value(100, 'v');
  for (int i = 0; i < 30000; i++) {
    std::string k = Key(static_cast<int>(rnd.Next() % 10000));
    ASSERT_TRUE(db_->Put(WriteOptions(), k, value).ok());
    model[k] = value;
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  Reopen();
  for (int i = 0; i < 10000; i += 271) {
    std::string k = Key(i);
    EXPECT_EQ(model.count(k) ? value : "NOT_FOUND", Get(k)) << k;
  }
  // Structure is valid after recovery too.
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  EXPECT_TRUE(db_->CheckInvariants(true).ok());
}

TEST_P(RecoveryTest, ObsoleteFilesRemovedOnReopen) {
  Open();
  std::string value(100, 'v');
  for (int i = 0; i < 30000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i % 5000), value).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  Close();

  // Plant orphans a crashed compaction could have left behind.
  ASSERT_TRUE(
      WriteStringToFile(&env_, "junk", "/db/999999.mst", false).ok());
  ASSERT_TRUE(
      WriteStringToFile(&env_, "junk", "/db/999998.dbtmp", false).ok());

  Open();
  EXPECT_FALSE(env_.FileExists("/db/999999.mst"));
  EXPECT_FALSE(env_.FileExists("/db/999998.dbtmp"));
  EXPECT_EQ(value, Get(Key(1234)));
}

TEST_P(RecoveryTest, OldManifestsCleanedUp) {
  Open();
  for (int round = 0; round < 4; round++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(round), "v").ok());
    Reopen();  // each open writes a fresh manifest snapshot
  }
  EXPECT_EQ(1u, LiveFiles(FileType::kManifestFile).size());
}

TEST_P(RecoveryTest, MissingCurrentWithCreateIfMissingStartsFresh) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  Close();
  ASSERT_TRUE(env_.RemoveFile(CurrentFileName("/db")).ok());
  // Without CURRENT the store's identity is gone; create_if_missing makes
  // a fresh one (the old orphaned table files get GC'd).
  Open();
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_P(RecoveryTest, OpenFailsWithoutCreateIfMissing) {
  Options options = MakeOptions();
  options.create_if_missing = false;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/nonexistent", &db);
  EXPECT_FALSE(s.ok());
}

TEST_P(RecoveryTest, ErrorIfExistsRespected) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  Close();
  Options options = MakeOptions();
  options.error_if_exists = true;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/db", &db);
  EXPECT_FALSE(s.ok());
}

TEST_P(RecoveryTest, SyncWalSurvives) {
  Options options = MakeOptions();
  options.sync_wal = true;
  ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  WriteOptions wo;
  wo.sync = true;
  ASSERT_TRUE(db_->Put(wo, "durable", "yes").ok());
  Reopen();
  EXPECT_EQ("yes", Get("durable"));
}

TEST_P(RecoveryTest, LargeWalReplay) {
  Open();
  // Write less than one memtable so everything stays in the WAL.
  std::string value(100, 'w');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), value).ok());
  }
  Reopen();
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ(value, Get(Key(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, RecoveryTest,
                         testing::Values(EngineType::kLeveled,
                                         EngineType::kAmt),
                         [](const testing::TestParamInfo<EngineType>& info) {
                           return info.param == EngineType::kLeveled
                                      ? "Leveled"
                                      : "Amt";
                         });

}  // namespace
}  // namespace iamdb
