// Tests for the Env abstraction: MemEnv semantics, PosixEnv round trips,
// CountingEnv instrumentation and the device model arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "env/counting_env.h"
#include "env/env.h"
#include "env/fault_injection_env.h"
#include "env/mem_env.h"
#include "stats/amp_stats.h"
#include "stats/device_model.h"
#include "stats/io_stats.h"

namespace iamdb {
namespace {

class MemEnvTest : public testing::Test {
 protected:
  MemEnv env_;
};

TEST_F(MemEnvTest, WriteReadRoundTrip) {
  ASSERT_TRUE(WriteStringToFile(&env_, "hello world", "/dir/f", false).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/dir/f", &contents).ok());
  EXPECT_EQ("hello world", contents);
}

TEST_F(MemEnvTest, MissingFileErrors) {
  std::unique_ptr<SequentialFile> seq;
  EXPECT_TRUE(env_.NewSequentialFile("/nope", &seq).IsNotFound());
  std::unique_ptr<RandomAccessFile> ra;
  EXPECT_TRUE(env_.NewRandomAccessFile("/nope", &ra).IsNotFound());
  EXPECT_FALSE(env_.FileExists("/nope"));
  uint64_t size;
  EXPECT_FALSE(env_.GetFileSize("/nope", &size).ok());
  EXPECT_FALSE(env_.RemoveFile("/nope").ok());
}

TEST_F(MemEnvTest, AppendableFileGrows) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_.NewAppendableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("abc").ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env_.NewAppendableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("def").ok());
  ASSERT_TRUE(f->Close().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &contents).ok());
  EXPECT_EQ("abcdef", contents);
}

TEST_F(MemEnvTest, WritableFileTruncatesExisting) {
  ASSERT_TRUE(WriteStringToFile(&env_, "long old contents", "/f", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env_, "new", "/f", false).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &contents).ok());
  EXPECT_EQ("new", contents);
}

TEST_F(MemEnvTest, RandomAccessReads) {
  ASSERT_TRUE(WriteStringToFile(&env_, "0123456789", "/f", false).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_.NewRandomAccessFile("/f", &f).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(f->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ("3456", result.ToString());
  // Past-EOF reads return short/empty results, not errors.
  ASSERT_TRUE(f->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ("89", result.ToString());
  ASSERT_TRUE(f->Read(20, 4, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

// MemEnv does not override ReadV, so this exercises the base-class
// fallback: one Read per segment, first error wins, short/past-EOF
// segments come back empty without failing the batch.
TEST_F(MemEnvTest, ReadVDefaultFallbackMatchesReads) {
  ASSERT_TRUE(
      WriteStringToFile(&env_, "0123456789abcdef", "/f", false).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_.NewRandomAccessFile("/f", &f).ok());

  char s0[4], s1[4], s2[8], s3[4];
  ReadRequest reqs[4];
  reqs[0] = {0, 4, s0, Slice(), Status::OK()};
  reqs[1] = {4, 4, s1, Slice(), Status::OK()};    // contiguous with [0]
  reqs[2] = {12, 8, s2, Slice(), Status::OK()};   // crosses EOF: short
  reqs[3] = {100, 4, s3, Slice(), Status::OK()};  // fully past EOF: empty
  ASSERT_TRUE(f->ReadV(reqs, 4).ok());
  EXPECT_EQ("0123", reqs[0].result.ToString());
  EXPECT_EQ("4567", reqs[1].result.ToString());
  EXPECT_EQ("cdef", reqs[2].result.ToString());
  EXPECT_TRUE(reqs[3].result.empty());
  for (const ReadRequest& r : reqs) EXPECT_TRUE(r.status.ok());
}

TEST_F(MemEnvTest, GetChildrenListsOnlyDirectEntries) {
  ASSERT_TRUE(WriteStringToFile(&env_, "x", "/db/a", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env_, "x", "/db/b", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env_, "x", "/db/sub/c", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env_, "x", "/other/d", false).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  EXPECT_EQ(2u, children.size());
}

TEST_F(MemEnvTest, RenameReplacesTarget) {
  ASSERT_TRUE(WriteStringToFile(&env_, "src", "/a", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env_, "dst", "/b", false).ok());
  ASSERT_TRUE(env_.RenameFile("/a", "/b").ok());
  EXPECT_FALSE(env_.FileExists("/a"));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/b", &contents).ok());
  EXPECT_EQ("src", contents);
}

TEST_F(MemEnvTest, TotalBytesTracksContents) {
  EXPECT_EQ(0u, env_.TotalBytes());
  ASSERT_TRUE(WriteStringToFile(&env_, std::string(100, 'x'), "/a", false).ok());
  ASSERT_TRUE(WriteStringToFile(&env_, std::string(50, 'y'), "/b", false).ok());
  EXPECT_EQ(150u, env_.TotalBytes());
  ASSERT_TRUE(env_.RemoveFile("/a").ok());
  EXPECT_EQ(50u, env_.TotalBytes());
}

TEST_F(MemEnvTest, TruncateShortensFile) {
  ASSERT_TRUE(WriteStringToFile(&env_, "0123456789", "/f", false).ok());
  ASSERT_TRUE(env_.Truncate("/f", 4).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &contents).ok());
  EXPECT_EQ("0123", contents);
  // Truncating beyond size is a no-op.
  ASSERT_TRUE(env_.Truncate("/f", 100).ok());
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &contents).ok());
  EXPECT_EQ("0123", contents);
}

class PosixEnvTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("iamdb_env_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    env_ = Env::Default();
    ASSERT_TRUE(env_->CreateDir(dir_.string()).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  Env* env_;
};

TEST_F(PosixEnvTest, WriteReadRoundTrip) {
  ASSERT_TRUE(WriteStringToFile(env_, "posix data", Path("f"), true).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, Path("f"), &contents).ok());
  EXPECT_EQ("posix data", contents);
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(Path("f"), &size).ok());
  EXPECT_EQ(10u, size);
}

TEST_F(PosixEnvTest, AppendableAndRandomAccess) {
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_->NewAppendableFile(Path("f"), &w).ok());
  ASSERT_TRUE(w->Append("hello ").ok());
  ASSERT_TRUE(w->Close().ok());
  ASSERT_TRUE(env_->NewAppendableFile(Path("f"), &w).ok());
  ASSERT_TRUE(w->Append("world").ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Close().ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env_->NewRandomAccessFile(Path("f"), &r).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(r->Read(6, 5, &result, scratch).ok());
  EXPECT_EQ("world", result.ToString());
}

// PosixEnv overrides ReadV with preadv over contiguous runs; results must
// be indistinguishable from per-segment pread, including short reads at
// EOF in the middle of a run.
TEST_F(PosixEnvTest, ReadVCoalescedAndScattered) {
  std::string payload;
  for (int i = 0; i < 256; i++) payload.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteStringToFile(env_, payload, Path("f"), true).ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env_->NewRandomAccessFile(Path("f"), &r).ok());

  char scratch[5][64];
  ReadRequest reqs[5];
  reqs[0] = {0, 16, scratch[0], Slice(), Status::OK()};
  reqs[1] = {16, 16, scratch[1], Slice(), Status::OK()};   // run with [0]
  reqs[2] = {32, 16, scratch[2], Slice(), Status::OK()};   // run with [1]
  reqs[3] = {128, 32, scratch[3], Slice(), Status::OK()};  // gap: new run
  reqs[4] = {240, 64, scratch[4], Slice(), Status::OK()};  // short at EOF
  ASSERT_TRUE(r->ReadV(reqs, 5).ok());
  EXPECT_EQ(payload.substr(0, 16), reqs[0].result.ToString());
  EXPECT_EQ(payload.substr(16, 16), reqs[1].result.ToString());
  EXPECT_EQ(payload.substr(32, 16), reqs[2].result.ToString());
  EXPECT_EQ(payload.substr(128, 32), reqs[3].result.ToString());
  EXPECT_EQ(payload.substr(240, 16), reqs[4].result.ToString());
  for (const ReadRequest& req : reqs) EXPECT_TRUE(req.status.ok());
}

// More contiguous segments than one preadv can carry (kMaxIov = 64): the
// implementation must chain calls without dropping or reordering bytes.
TEST_F(PosixEnvTest, ReadVRunLongerThanIovLimit) {
  std::string payload(100 * 8, 'x');
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<char>('a' + (i / 8) % 26);
  }
  ASSERT_TRUE(WriteStringToFile(env_, payload, Path("f"), true).ok());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env_->NewRandomAccessFile(Path("f"), &r).ok());

  std::vector<std::array<char, 8>> scratch(100);
  std::vector<ReadRequest> reqs(100);
  for (size_t i = 0; i < 100; i++) {
    reqs[i] = {i * 8, 8, scratch[i].data(), Slice(), Status::OK()};
  }
  ASSERT_TRUE(r->ReadV(reqs.data(), reqs.size()).ok());
  for (size_t i = 0; i < 100; i++) {
    EXPECT_EQ(payload.substr(i * 8, 8), reqs[i].result.ToString()) << i;
  }
}

TEST_F(PosixEnvTest, GetChildrenAndRemove) {
  ASSERT_TRUE(WriteStringToFile(env_, "1", Path("a"), false).ok());
  ASSERT_TRUE(WriteStringToFile(env_, "2", Path("b"), false).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_.string(), &children).ok());
  EXPECT_EQ(2u, children.size());
  ASSERT_TRUE(env_->RemoveFile(Path("a")).ok());
  EXPECT_FALSE(env_->FileExists(Path("a")));
}

TEST_F(PosixEnvTest, NowMicrosMonotonic) {
  uint64_t t1 = env_->NowMicros();
  env_->SleepForMicroseconds(1000);
  uint64_t t2 = env_->NowMicros();
  EXPECT_GE(t2, t1 + 500);
}

TEST(CountingEnvTest, CountsReadsWritesSyncs) {
  MemEnv base;
  IoStats stats;
  CountingEnv env(&base, &stats);

  ASSERT_TRUE(WriteStringToFile(&env, std::string(1000, 'x'), "/f", true).ok());
  IoStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(1000u, snap.bytes_written);
  EXPECT_EQ(1u, snap.write_ops);
  EXPECT_EQ(1u, snap.fsyncs);

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  char scratch[128];
  Slice result;
  ASSERT_TRUE(r->Read(0, 100, &result, scratch).ok());
  ASSERT_TRUE(r->Read(500, 100, &result, scratch).ok());
  snap = stats.Snapshot();
  EXPECT_EQ(200u, snap.bytes_read);
  EXPECT_EQ(2u, snap.read_ops);
}

// A vectored read is charged one read_op ("seek") per contiguous run, not
// per segment — this is the signal the MultiGet coalescing test asserts on
// (fewer device reads for the same blocks).
TEST(CountingEnvTest, ReadVChargesOneOpPerContiguousRun) {
  MemEnv base;
  IoStats stats;
  CountingEnv env(&base, &stats);
  ASSERT_TRUE(
      WriteStringToFile(&env, std::string(4096, 'x'), "/f", false).ok());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());

  // Three segments, two contiguous + one after a gap: 2 runs, 3 * 64 bytes.
  char scratch[3][64];
  ReadRequest reqs[3];
  reqs[0] = {0, 64, scratch[0], Slice(), Status::OK()};
  reqs[1] = {64, 64, scratch[1], Slice(), Status::OK()};
  reqs[2] = {1024, 64, scratch[2], Slice(), Status::OK()};
  {
    OpIoScope scope;
    ASSERT_TRUE(r->ReadV(reqs, 3).ok());
    EXPECT_EQ(2u, scope.context().seeks);
    EXPECT_EQ(192u, scope.context().bytes_read);
  }
  IoStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(2u, snap.read_ops);
  EXPECT_EQ(192u, snap.bytes_read);
}

TEST(CountingEnvTest, OpIoScopeCapturesPerOperationIo) {
  MemEnv base;
  IoStats stats;
  CountingEnv env(&base, &stats);
  ASSERT_TRUE(WriteStringToFile(&env, std::string(4096, 'x'), "/f", false).ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  char scratch[4096];
  Slice result;
  {
    OpIoScope scope;
    ASSERT_TRUE(r->Read(0, 1024, &result, scratch).ok());
    ASSERT_TRUE(r->Read(2048, 512, &result, scratch).ok());
    EXPECT_EQ(2u, scope.context().seeks);
    EXPECT_EQ(1536u, scope.context().bytes_read);
  }
  // Outside any scope, recording is a no-op (must not crash).
  ASSERT_TRUE(r->Read(0, 16, &result, scratch).ok());
}

TEST(CountingEnvTest, NestedScopesAreIndependent) {
  MemEnv base;
  IoStats stats;
  CountingEnv env(&base, &stats);
  ASSERT_TRUE(WriteStringToFile(&env, std::string(100, 'x'), "/f", false).ok());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  char scratch[100];
  Slice result;

  OpIoScope outer;
  ASSERT_TRUE(r->Read(0, 10, &result, scratch).ok());
  {
    OpIoScope inner;
    ASSERT_TRUE(r->Read(0, 20, &result, scratch).ok());
    EXPECT_EQ(1u, inner.context().seeks);
    EXPECT_EQ(20u, inner.context().bytes_read);
  }
  // Inner scope's IO is not double counted into outer.
  EXPECT_EQ(1u, outer.context().seeks);
  EXPECT_EQ(10u, outer.context().bytes_read);
}

TEST(DeviceModelTest, HddSeeksDominate) {
  DeviceModel hdd(DeviceProfile::HDD());
  // 100 seeks of 4KB each: seek cost should dwarf transfer cost.
  double micros = hdd.ReadMicros(100, 100 * 4096);
  EXPECT_GT(micros, 100 * 8000.0 * 0.99);
  EXPECT_LT(micros, 100 * 8000.0 * 1.1);
}

TEST(DeviceModelTest, SsdBandwidthDominatesForBulk) {
  DeviceModel ssd(DeviceProfile::SSD());
  // 1 seek + 100MB: transfer cost dominates.
  double micros = ssd.ReadMicros(1, 100 << 20);
  double transfer = (100 << 20) / 500.0;
  EXPECT_NEAR(transfer, micros, transfer * 0.01);
}

TEST(DeviceModelTest, TotalMicrosCombinesReadAndWrite) {
  DeviceModel hdd(DeviceProfile::HDD());
  IoStatsSnapshot delta;
  delta.read_ops = 10;
  delta.bytes_read = 10 * 4096;
  delta.write_ops = 64;
  delta.bytes_written = 1 << 20;
  double total = hdd.TotalMicros(delta);
  EXPECT_GT(total, hdd.ReadMicros(10, 10 * 4096));
  EXPECT_GT(total, hdd.WriteMicros(64, 1 << 20));
}

TEST(AmpStatsTest, PerLevelAccounting) {
  AmpStats amp;
  amp.RecordUserWrite(1000);
  amp.RecordLevelWrite(1, WriteReason::kFlush, 1000);
  amp.RecordLevelWrite(2, WriteReason::kMerge, 3000);
  amp.RecordWal(1000);

  EXPECT_DOUBLE_EQ(1.0, amp.LevelWriteAmp(1));
  EXPECT_DOUBLE_EQ(3.0, amp.LevelWriteAmp(2));
  // WAL excluded from the per-level totals (paper Sec 6.2).
  EXPECT_DOUBLE_EQ(4.0, amp.TotalWriteAmp());
  EXPECT_EQ(2, amp.MaxRecordedLevel());
  EXPECT_EQ(1000u, amp.reason_bytes(WriteReason::kWal));
}

TEST(AmpStatsTest, ResetClearsEverything) {
  AmpStats amp;
  amp.RecordUserWrite(10);
  amp.RecordLevelWrite(3, WriteReason::kAppend, 100);
  amp.Reset();
  EXPECT_EQ(0u, amp.user_bytes());
  EXPECT_DOUBLE_EQ(0.0, amp.TotalWriteAmp());
}

TEST(AmpStatsTest, LevelClamping) {
  AmpStats amp;
  amp.RecordUserWrite(1);
  amp.RecordLevelWrite(-5, WriteReason::kFlush, 10);
  amp.RecordLevelWrite(99, WriteReason::kFlush, 20);
  EXPECT_EQ(10u, amp.level_bytes(0));
  EXPECT_EQ(20u, amp.level_bytes(AmpStats::kMaxLevels - 1));
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv: unsynced-byte tracking and crash semantics.

class FaultInjectionEnvTest : public testing::Test {
 protected:
  FaultInjectionEnvTest() : fault_(&mem_) {}

  std::string ReadAll(const std::string& fname) {
    std::string contents;
    EXPECT_TRUE(ReadFileToString(&fault_, fname, &contents).ok());
    return contents;
  }

  MemEnv mem_;
  FaultInjectionEnv fault_;
};

TEST_F(FaultInjectionEnvTest, DropUnsyncedKeepsSyncedPrefix) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("-lost").ok());
  EXPECT_EQ(5u, fault_.UnsyncedBytes());

  ASSERT_TRUE(fault_.DropUnsyncedFileData().ok());
  EXPECT_EQ(0u, fault_.UnsyncedBytes());
  EXPECT_EQ("durable", ReadAll("/f"));
}

TEST_F(FaultInjectionEnvTest, RandomDropTearsInsideUnsyncedTail) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("sync").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("0123456789").ok());

  Random64 rng(42);
  ASSERT_TRUE(fault_.DropRandomUnsyncedFileData(&rng).ok());
  std::string contents = ReadAll("/f");
  ASSERT_GE(contents.size(), 4u);
  ASSERT_LE(contents.size(), 14u);
  EXPECT_EQ("sync", contents.substr(0, 4));
  EXPECT_EQ(std::string("0123456789").substr(0, contents.size() - 4),
            contents.substr(4));
}

TEST_F(FaultInjectionEnvTest, DeleteFilesCreatedAfterLastDirSync) {
  // Synced file created after the dir sync marker: its directory entry
  // became durable with the sync.
  fault_.MarkDirSynced();
  std::unique_ptr<WritableFile> synced;
  ASSERT_TRUE(fault_.NewWritableFile("/synced", &synced).ok());
  ASSERT_TRUE(synced->Append("x").ok());
  ASSERT_TRUE(synced->Sync().ok());
  // Never-synced file: the crash loses it entirely.
  std::unique_ptr<WritableFile> lost;
  ASSERT_TRUE(fault_.NewWritableFile("/lost", &lost).ok());
  ASSERT_TRUE(lost->Append("y").ok());

  ASSERT_TRUE(fault_.DeleteFilesCreatedAfterLastDirSync().ok());
  EXPECT_TRUE(fault_.FileExists("/synced"));
  EXPECT_FALSE(fault_.FileExists("/lost"));
}

TEST_F(FaultInjectionEnvTest, InactiveFilesystemFailsWritesNotReads) {
  ASSERT_TRUE(WriteStringToFile(&fault_, "v", "/f", true).ok());
  fault_.SetFilesystemActive(false);

  std::unique_ptr<WritableFile> w;
  EXPECT_FALSE(fault_.NewWritableFile("/g", &w).ok());
  EXPECT_FALSE(fault_.RemoveFile("/f").ok());
  EXPECT_FALSE(fault_.RenameFile("/f", "/h").ok());
  EXPECT_EQ("v", ReadAll("/f"));  // reads still work

  fault_.Heal();
  EXPECT_TRUE(fault_.IsFilesystemActive());
  EXPECT_TRUE(fault_.NewWritableFile("/g", &w).ok());
}

TEST_F(FaultInjectionEnvTest, ErrorScheduleIsSeedDeterministic) {
  // Same seed -> identical injected-failure sequence.
  std::vector<bool> runs[2];
  for (int run = 0; run < 2; run++) {
    fault_.Heal();
    fault_.SetErrorSchedule(kFaultWrite, /*seed=*/123, /*one_in=*/3);
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(fault_.NewWritableFile("/sched" + std::to_string(run), &f)
                    .ok());
    for (int i = 0; i < 64; i++) runs[run].push_back(f->Append("x").ok());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_NE(std::count(runs[0].begin(), runs[0].end(), false), 0);
  fault_.ClearErrorSchedule();
}

TEST_F(FaultInjectionEnvTest, ReadScheduleFailsSegmentsDeterministically) {
  ASSERT_TRUE(
      WriteStringToFile(&fault_, std::string(1024, 'r'), "/f", true).ok());

  // One RNG draw per segment: a 64-segment ReadV must replay exactly like
  // 64 sequential Read() calls under the same seed.
  std::vector<bool> loop_ok, vec_ok;
  fault_.SetErrorSchedule(kFaultRead, /*seed=*/99, /*one_in=*/4);
  {
    std::unique_ptr<RandomAccessFile> f;
    ASSERT_TRUE(fault_.NewRandomAccessFile("/f", &f).ok());
    char scratch[16];
    Slice result;
    for (int i = 0; i < 64; i++) {
      loop_ok.push_back(f->Read(i * 16, 16, &result, scratch).ok());
    }
  }
  fault_.SetErrorSchedule(kFaultRead, /*seed=*/99, /*one_in=*/4);
  {
    std::unique_ptr<RandomAccessFile> f;
    ASSERT_TRUE(fault_.NewRandomAccessFile("/f", &f).ok());
    std::vector<std::array<char, 16>> scratch(64);
    std::vector<ReadRequest> reqs(64);
    for (size_t i = 0; i < 64; i++) {
      reqs[i] = {i * 16, 16, scratch[i].data(), Slice(), Status::OK()};
    }
    f->ReadV(reqs.data(), reqs.size());
    for (const ReadRequest& r : reqs) vec_ok.push_back(r.status.ok());
  }
  fault_.ClearErrorSchedule();

  EXPECT_EQ(loop_ok, vec_ok);
  EXPECT_NE(std::count(loop_ok.begin(), loop_ok.end(), false), 0);
}

TEST_F(FaultInjectionEnvTest, ReadVSurvivorsSucceedAroundFailedSegments) {
  std::string payload;
  for (int i = 0; i < 64; i++) payload.push_back(static_cast<char>('A' + i % 26));
  ASSERT_TRUE(WriteStringToFile(&fault_, payload, "/f", true).ok());

  // Injected failures surface per segment; the survivors still carry the
  // right bytes rather than being poisoned by their failed neighbours.
  // Scan a few seeds so the assertion covers batches with both outcomes.
  int total_failures = 0;
  for (uint64_t seed = 1; seed <= 8; seed++) {
    fault_.SetErrorSchedule(kFaultRead, seed, /*one_in=*/2);
    std::unique_ptr<RandomAccessFile> f;
    ASSERT_TRUE(fault_.NewRandomAccessFile("/f", &f).ok());
    std::vector<std::array<char, 4>> scratch(16);
    std::vector<ReadRequest> reqs(16);
    for (size_t i = 0; i < 16; i++) {
      reqs[i] = {i * 4, 4, scratch[i].data(), Slice(), Status::OK()};
    }
    f->ReadV(reqs.data(), reqs.size());
    for (size_t i = 0; i < 16; i++) {
      if (!reqs[i].status.ok()) {
        total_failures++;
        EXPECT_TRUE(reqs[i].result.empty());
      } else {
        EXPECT_EQ(payload.substr(i * 4, 4), reqs[i].result.ToString()) << i;
      }
    }
  }
  fault_.ClearErrorSchedule();
  EXPECT_GT(total_failures, 0);
}

TEST_F(FaultInjectionEnvTest, ReadsNeverChargeWriteBudget) {
  ASSERT_TRUE(WriteStringToFile(&fault_, "abcd", "/f", true).ok());
  fault_.SetWriteBudget(1);

  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(fault_.NewRandomAccessFile("/f", &f).ok());
  char scratch[4];
  Slice result;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(f->Read(0, 4, &result, scratch).ok());
  }
  // The budget is still intact for the write path.
  std::unique_ptr<WritableFile> w;
  EXPECT_TRUE(fault_.NewWritableFile("/g", &w).ok());
  fault_.Heal();
}

TEST_F(FaultInjectionEnvTest, RenameMovesTrackedState) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/a", &f).ok());
  ASSERT_TRUE(f->Append("keep").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("-drop").ok());
  f.reset();

  ASSERT_TRUE(fault_.RenameFile("/a", "/b").ok());
  ASSERT_TRUE(fault_.DropUnsyncedFileData().ok());
  EXPECT_EQ("keep", ReadAll("/b"));
}

}  // namespace
}  // namespace iamdb
