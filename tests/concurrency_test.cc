// Concurrency tests: concurrent readers during writes and compactions,
// iterator stability across tree reorganisation, snapshot consistency from
// other threads, multi-threaded writers through the group-commit path, and
// the lock-free read-path publication protocol (snapshot monotonicity and
// freshness under readers vs writers vs compaction).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/db.h"
#include "core/snapshot.h"
#include "env/mem_env.h"
#include "test_seed.h"
#include "util/random.h"

namespace iamdb {
namespace {

// All three engines of the paper: the leveled baseline, the LSA-tree and
// the IAM-tree (AMT engine under its two policies).
struct EngineConfig {
  EngineType engine;
  AmtPolicy policy;
  const char* name;
};

class ConcurrencyTest : public testing::TestWithParam<EngineConfig> {
 protected:
  void SetUp() override {
    Options options;
    options.env = &env_;
    options.engine = GetParam().engine;
    options.amt.policy = GetParam().policy;
    options.node_capacity = 24 << 10;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    options.background_threads = 2;
    options.leveled.max_bytes_level1 = 96 << 10;
    options.leveled.target_file_size = 12 << 10;
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  MemEnv env_;
  std::unique_ptr<DB> db_;
};

TEST_P(ConcurrencyTest, ReadersDuringHeavyWrites) {
  std::atomic<bool> done{false};
  std::atomic<int> read_errors{0};
  std::atomic<int> writer_progress{0};

  // Keys follow the invariant: key i always maps to a value ending in i.
  std::thread writer([&] {
    std::string value(100, 'v');
    for (int i = 0; i < 30000; i++) {
      std::string v = "val-" + std::to_string(i % 3000);
      Status s = db_->Put(WriteOptions(), Key(i % 3000), v);
      if (!s.ok()) break;
      writer_progress.store(i, std::memory_order_relaxed);
    }
    done = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      Random64 rnd(t + 1);
      while (!done.load(std::memory_order_acquire)) {
        int k = static_cast<int>(rnd.Next() % 3000);
        std::string value;
        Status s = db_->Get(ReadOptions(), Key(k), &value);
        if (s.ok()) {
          // Value must always be internally consistent with its key.
          if (value != "val-" + std::to_string(k)) {
            read_errors.fetch_add(1);
          }
        } else if (!s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(0, read_errors.load());
  EXPECT_TRUE(db_->WaitForQuiescence().ok());
  EXPECT_TRUE(db_->CheckInvariants(true).ok());
}

TEST_P(ConcurrencyTest, IteratorStableWhileTreeReorganises) {
  std::string value(100, 'v');
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "stable").ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());

  // Open an iterator, then churn the tree hard; the iterator's view is
  // pinned by its version/snapshot.
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i % 5000), "churn").ok());
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());

  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    ASSERT_EQ("stable", iter->value().ToString())
        << iter->key().ToString();
  }
  EXPECT_EQ(5000, count);
  EXPECT_TRUE(iter->status().ok());
}

TEST_P(ConcurrencyTest, ParallelWritersAllLand) {
  const int kThreads = 4, kPerThread = 4000;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      std::string value(64, static_cast<char>('a' + t));
      for (int i = 0; i < kPerThread; i++) {
        if (!db_->Put(WriteOptions(), Key(t * kPerThread + i), value).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(0, failures.load());
  ASSERT_TRUE(db_->WaitForQuiescence().ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) count++;
  EXPECT_EQ(kThreads * kPerThread, count);
}

TEST_P(ConcurrencyTest, SnapshotConsistentFromOtherThread) {
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "epoch1").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();

  std::thread churner([&] {
    for (int round = 0; round < 10; round++) {
      for (int i = 0; i < 1000; i++) {
        db_->Put(WriteOptions(), Key(i), "epoch2");
      }
    }
  });

  // Concurrently read through the snapshot: must always see epoch1.
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  Random64 rnd(5);
  for (int probe = 0; probe < 3000; probe++) {
    std::string value;
    ASSERT_TRUE(
        db_->Get(at_snap, Key(static_cast<int>(rnd.Next() % 1000)), &value)
            .ok());
    ASSERT_EQ("epoch1", value);
  }
  churner.join();
  db_->ReleaseSnapshot(snap);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), Key(0), &value).ok());
  EXPECT_EQ("epoch2", value);
}

TEST_P(ConcurrencyTest, MixedScanAndWriteStorm) {
  std::atomic<bool> done{false};
  std::atomic<int> scan_errors{0};

  std::thread writer([&] {
    Random64 rnd(11);
    for (int i = 0; i < 20000; i++) {
      std::string k = Key(static_cast<int>(rnd.Next() % 4000));
      if (rnd.Next() % 4 == 0) {
        db_->Delete(WriteOptions(), k);
      } else {
        db_->Put(WriteOptions(), k, std::string(80, 'w'));
      }
    }
    done = true;
  });

  std::thread scanner([&] {
    Random64 rnd(13);
    while (!done.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
      std::string prev;
      int steps = 0;
      for (iter->Seek(Key(static_cast<int>(rnd.Next() % 4000)));
           iter->Valid() && steps < 200; iter->Next(), steps++) {
        std::string cur = iter->key().ToString();
        if (!prev.empty() && prev >= cur) scan_errors.fetch_add(1);
        prev = cur;
      }
      if (!iter->status().ok()) scan_errors.fetch_add(1);
    }
  });

  writer.join();
  scanner.join();
  EXPECT_EQ(0, scan_errors.load());
  EXPECT_TRUE(db_->WaitForQuiescence().ok());
  EXPECT_TRUE(db_->CheckInvariants(true).ok());
}

// Readers vs writers vs compaction: the regression test for the lock-free
// read path.  Asserts two properties of the publication protocol:
//   (1) snapshot monotonicity — a reader that observed sequence S never
//       subsequently observes a view with last_sequence < S, and
//   (2) freshness — Get never returns a value older than the last write
//       acknowledged before the read began, and never a torn value.
// Writer volume against a 24KB memtable keeps flushes and compactions
// running throughout.
TEST_P(ConcurrencyTest, SnapshotMonotonicityUnderCompaction) {
  const uint64_t seed = test::TestSeed(0xC0FFEE);
  SCOPED_TRACE(test::SeedTrace(seed));

  constexpr int kKeys = 512;
  constexpr int kWriterOps = 15000;
  constexpr int kReaders = 3;

  // floor[k] = newest counter whose Put has been acknowledged for key k.
  // A read that starts after the store must observe a counter >= floor.
  std::array<std::atomic<int64_t>, kKeys> floor;
  for (auto& f : floor) f.store(-1, std::memory_order_relaxed);

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};

  std::thread writer([&] {
    Random64 rnd(seed);
    for (int i = 0; i < kWriterOps && errors.load() == 0; i++) {
      const int k = static_cast<int>(rnd.Next() % kKeys);
      const std::string value =
          Key(k) + "#" + std::to_string(i) + "#" + std::string(60, 'p');
      if (!db_->Put(WriteOptions(), Key(k), value).ok()) {
        errors.fetch_add(1);
        break;
      }
      floor[k].store(i, std::memory_order_release);
      // Churn a disjoint range with deletes to keep compaction busy
      // dropping tombstones while the monotone range is probed.
      if (i % 7 == 0) {
        db_->Delete(WriteOptions(), Key(kKeys + static_cast<int>(
                                            rnd.Next() % kKeys)));
      } else if (i % 7 == 3) {
        db_->Put(WriteOptions(),
                 Key(kKeys + static_cast<int>(rnd.Next() % kKeys)),
                 std::string(80, 'c'));
      }
    }
    done = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; t++) {
    readers.emplace_back([&, t] {
      Random64 rnd(seed + 1 + t);
      SequenceNumber max_seen_sequence = 0;
      while (!done.load(std::memory_order_acquire)) {
        // (1) The observed last_sequence never moves backwards.
        const Snapshot* snap = db_->GetSnapshot();
        const SequenceNumber seq =
            static_cast<const SnapshotImpl*>(snap)->sequence();
        if (seq < max_seen_sequence) {
          ADD_FAILURE() << "sequence went backwards: " << seq << " < "
                        << max_seen_sequence;
          errors.fetch_add(1);
        }
        max_seen_sequence = seq;

        // (2) Freshness + integrity: sample the acknowledged floor BEFORE
        // the read; the value must parse, match its key, and carry a
        // counter at least as new as the floor.
        const int k = static_cast<int>(rnd.Next() % kKeys);
        const int64_t f = floor[k].load(std::memory_order_acquire);
        std::string value;
        Status s = db_->Get(ReadOptions(), Key(k), &value);
        if (s.ok()) {
          const std::string prefix = Key(k) + "#";
          int64_t counter = -1;
          if (value.rfind(prefix, 0) != 0 ||
              (counter = std::strtoll(value.c_str() + prefix.size(),
                                      nullptr, 10)) < f) {
            ADD_FAILURE() << "stale or torn value for " << Key(k)
                          << ": floor=" << f << " got \"" << value << "\"";
            errors.fetch_add(1);
          }
        } else if (!s.IsNotFound() || f >= 0) {
          // A key whose Put was acknowledged can never be NotFound (the
          // monotone range is never deleted).
          ADD_FAILURE() << "get(" << Key(k) << ") failed: " << s.ToString()
                        << " floor=" << f;
          errors.fetch_add(1);
        }

        // A snapshot read must stay pinned at or below the snapshot even
        // while compaction rewrites the tree underneath it.
        std::string pinned;
        ReadOptions at_snap;
        at_snap.snapshot = snap;
        Status ps = db_->Get(at_snap, Key(k), &pinned);
        if (ps.ok()) {
          const std::string prefix = Key(k) + "#";
          if (pinned.rfind(prefix, 0) != 0) {
            ADD_FAILURE() << "torn snapshot value for " << Key(k);
            errors.fetch_add(1);
          }
        } else if (!ps.IsNotFound()) {
          ADD_FAILURE() << "snapshot get failed: " << ps.ToString();
          errors.fetch_add(1);
        }
        db_->ReleaseSnapshot(snap);
        if (errors.load() != 0) break;
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(0, errors.load());
  EXPECT_TRUE(db_->WaitForQuiescence().ok());
  EXPECT_TRUE(db_->CheckInvariants(true).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ConcurrencyTest,
    testing::Values(
        EngineConfig{EngineType::kLeveled, AmtPolicy::kIam, "Leveled"},
        EngineConfig{EngineType::kAmt, AmtPolicy::kLsa, "AmtLsa"},
        EngineConfig{EngineType::kAmt, AmtPolicy::kIam, "AmtIam"}),
    [](const testing::TestParamInfo<EngineConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace iamdb
