// End-to-end DB tests, parameterized over all three engine configurations
// (leveled LSM baseline, LSA-tree, IAM-tree): CRUD, MVCC snapshots, scans,
// compaction-driven reorganisation, and model-checked random workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/db.h"
#include "core/db_impl.h"
#include "env/mem_env.h"
#include "util/random.h"

namespace iamdb {
namespace {

enum class Config { kLeveled, kLeveledStrict, kLsa, kIam };

std::string ConfigName(Config c) {
  switch (c) {
    case Config::kLeveled: return "Leveled";
    case Config::kLeveledStrict: return "LeveledStrict";
    case Config::kLsa: return "Lsa";
    case Config::kIam: return "Iam";
  }
  return "?";
}

class DbTest : public testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    Reopen();
  }

  void TearDown() override { db_.reset(); }

  Options MakeOptions() {
    Options options;
    options.env = env_.get();
    // Tiny knobs so a few thousand keys exercise multiple levels.
    options.node_capacity = 32 << 10;         // Ct = 32KB
    options.block_cache_capacity = 1 << 20;
    options.table.block_size = 1024;
    options.amt.fanout = 4;                   // t = 4
    options.leveled.max_bytes_level1 = 128 << 10;
    options.leveled.target_file_size = 16 << 10;
    options.leveled.l0_compaction_trigger = 4;
    switch (GetParam()) {
      case Config::kLeveled:
        options.engine = EngineType::kLeveled;
        break;
      case Config::kLeveledStrict:
        options.engine = EngineType::kLeveled;
        options.leveled.strict_level_limits = true;
        options.background_threads = 2;
        break;
      case Config::kLsa:
        options.engine = EngineType::kAmt;
        options.amt.policy = AmtPolicy::kLsa;
        break;
      case Config::kIam:
        options.engine = EngineType::kAmt;
        options.amt.policy = AmtPolicy::kIam;
        options.amt.k = 3;
        break;
    }
    return options;
  }

  void Reopen() {
    db_.reset();
    Options options = MakeOptions();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }
  Status Delete(const std::string& k) {
    return db_->Delete(WriteOptions(), k);
  }
  std::string Get(const std::string& k, const Snapshot* snapshot = nullptr) {
    ReadOptions options;
    options.snapshot = snapshot;
    std::string value;
    Status s = db_->Get(options, k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR: " + s.ToString();
    return value;
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  // All live user keys+values via a full scan.
  std::map<std::string, std::string> Dump() {
    std::map<std::string, std::string> result;
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      result[iter->key().ToString()] = iter->value().ToString();
    }
    EXPECT_TRUE(iter->status().ok()) << iter->status().ToString();
    return result;
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DB> db_;
};

TEST_P(DbTest, EmptyDb) {
  EXPECT_EQ("NOT_FOUND", Get("anything"));
  EXPECT_TRUE(Dump().empty());
}

TEST_P(DbTest, PutGetDelete) {
  ASSERT_TRUE(Put("k1", "v1").ok());
  EXPECT_EQ("v1", Get("k1"));
  ASSERT_TRUE(Put("k1", "v2").ok());
  EXPECT_EQ("v2", Get("k1"));
  ASSERT_TRUE(Delete("k1").ok());
  EXPECT_EQ("NOT_FOUND", Get("k1"));
}

TEST_P(DbTest, EmptyKeyAndValue) {
  ASSERT_TRUE(Put("", "empty-key-value").ok());
  EXPECT_EQ("empty-key-value", Get(""));
  ASSERT_TRUE(Put("k", "").ok());
  EXPECT_EQ("", Get("k"));
}

TEST_P(DbTest, BinaryKeysAndValues) {
  // Keys with embedded NULs and 0xFF bytes exercise every encoding layer
  // (varint framing, prefix compression, separators, range bounds).
  std::vector<std::string> keys = {
      std::string("\x00", 1),
      std::string("\x00\x00nul-prefixed", 15),
      std::string("a\x00z", 3),
      std::string("a\xff", 2),
      std::string("\xff", 1),
      std::string("\xff\xff\xff", 3),
      std::string("mixed\x00\xff\x01", 8),
  };
  std::string binary_value;
  for (int i = 0; i < 256; i++) binary_value.push_back(static_cast<char>(i));

  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(Put(keys[i], binary_value + std::to_string(i)).ok());
  }
  // Push through flush + compaction so the keys hit the table layer.
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(Put(Key(i), std::string(64, 'f')).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());

  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(binary_value + std::to_string(i), Get(keys[i])) << i;
  }
  // Ordered scan must place them correctly (bytewise order).
  std::vector<std::string> sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->Seek(std::string("\x00", 1));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(sorted_keys[0], iter->key().ToString());
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(sorted_keys.back(), iter->key().ToString());
}

TEST_P(DbTest, LargeValuesSurviveFlush) {
  std::string big(100000, 'x');
  ASSERT_TRUE(Put("big", big).ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  EXPECT_EQ(big, Get("big"));
}

TEST_P(DbTest, WriteBatchAtomicity) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
  EXPECT_EQ("3", Get("c"));
}

TEST_P(DbTest, ManyKeysThroughCompactions) {
  const int N = 20000;
  for (int i = 0; i < N; i++) {
    ASSERT_TRUE(Put(Key(i), "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  // Spot-check point reads after the tree reorganised.
  for (int i = 0; i < N; i += 997) {
    EXPECT_EQ("value" + std::to_string(i), Get(Key(i))) << Key(i);
  }
  EXPECT_EQ("value0", Get(Key(0)));
  EXPECT_EQ("value" + std::to_string(N - 1), Get(Key(N - 1)));
}

TEST_P(DbTest, RandomInsertOrderFullScan) {
  Random rnd(301);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 8000; i++) {
    std::string k = Key(rnd.Uniform(4000));
    std::string v = "v" + std::to_string(rnd.Next());
    ASSERT_TRUE(Put(k, v).ok());
    model[k] = v;
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  EXPECT_EQ(model, Dump());
}

TEST_P(DbTest, DeletesEventuallyReclaimed) {
  const int N = 4000;
  for (int i = 0; i < N; i++) {
    ASSERT_TRUE(Put(Key(i), std::string(100, 'v')).ok());
  }
  for (int i = 0; i < N; i++) {
    ASSERT_TRUE(Delete(Key(i)).ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  EXPECT_TRUE(Dump().empty());
  for (int i = 0; i < N; i += 371) {
    EXPECT_EQ("NOT_FOUND", Get(Key(i)));
  }
}

TEST_P(DbTest, OverwritesKeepLatestOnly) {
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(Put(Key(i), "round" + std::to_string(round)).ok());
    }
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  auto dump = Dump();
  EXPECT_EQ(1000u, dump.size());
  for (const auto& [k, v] : dump) {
    EXPECT_EQ("round9", v) << k;
  }
}

TEST_P(DbTest, SnapshotSeesOldState) {
  ASSERT_TRUE(Put("k", "before").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "after").ok());
  ASSERT_TRUE(Delete("k2").ok());
  EXPECT_EQ("before", Get("k", snap));
  EXPECT_EQ("after", Get("k"));
  db_->ReleaseSnapshot(snap);
}

TEST_P(DbTest, SnapshotSurvivesCompaction) {
  ASSERT_TRUE(Put("stable", "old").ok());
  const Snapshot* snap = db_->GetSnapshot();
  // Bury the old version under thousands of writes + compactions.
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(Put(Key(i % 2000), std::string(64, 'x')).ok());
  }
  ASSERT_TRUE(Put("stable", "new").ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  EXPECT_EQ("old", Get("stable", snap));
  EXPECT_EQ("new", Get("stable"));
  db_->ReleaseSnapshot(snap);
}

TEST_P(DbTest, SnapshotScanIsolation) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put(Key(i), "v1").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();
  for (int i = 50; i < 150; i++) {
    ASSERT_TRUE(Put(Key(i), "v2").ok());
  }
  ReadOptions options;
  options.snapshot = snap;
  std::unique_ptr<Iterator> iter(db_->NewIterator(options));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    EXPECT_EQ("v1", iter->value().ToString());
  }
  EXPECT_EQ(100, count);
  db_->ReleaseSnapshot(snap);
}

TEST_P(DbTest, IteratorSeekSemantics) {
  for (int i = 0; i < 1000; i += 2) {  // even keys
    ASSERT_TRUE(Put(Key(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));

  iter->Seek(Key(500));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(Key(500), iter->key().ToString());

  iter->Seek(Key(501));  // odd: next even key
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(Key(502), iter->key().ToString());

  iter->Seek(Key(9999));
  EXPECT_FALSE(iter->Valid());

  iter->Seek("");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(Key(0), iter->key().ToString());
}

TEST_P(DbTest, ReverseIteration) {
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(Put(Key(i), std::to_string(i)).ok());
  }
  // Delete a stripe so reverse must hop tombstones.
  for (int i = 1000; i < 1100; i++) {
    ASSERT_TRUE(Delete(Key(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(Key(2999), iter->key().ToString());

  int count = 0;
  int expect = 2999;
  for (; iter->Valid(); iter->Prev(), count++) {
    EXPECT_EQ(Key(expect), iter->key().ToString());
    expect--;
    if (expect == 1099) expect = 999;  // deleted stripe skipped
  }
  EXPECT_EQ(2900, count);
  EXPECT_TRUE(iter->status().ok());

  // Direction switches mid-stream.
  iter->Seek(Key(500));
  ASSERT_TRUE(iter->Valid());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(Key(499), iter->key().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(Key(500), iter->key().ToString());
}

TEST_P(DbTest, RangeScanAfterMixedWorkload) {
  Random rnd(17);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 10000; i++) {
    std::string k = Key(rnd.Uniform(3000));
    if (rnd.OneIn(4)) {
      ASSERT_TRUE(Delete(k).ok());
      model.erase(k);
    } else {
      std::string v = std::to_string(i);
      ASSERT_TRUE(Put(k, v).ok());
      model[k] = v;
    }
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());

  // Bounded range scans against the model.
  for (int trial = 0; trial < 20; trial++) {
    std::string start = Key(rnd.Uniform(3000));
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    iter->Seek(start);
    auto it = model.lower_bound(start);
    for (int step = 0; step < 50; step++) {
      if (it == model.end()) {
        EXPECT_FALSE(iter->Valid());
        break;
      }
      ASSERT_TRUE(iter->Valid()) << "trial " << trial << " step " << step;
      EXPECT_EQ(it->first, iter->key().ToString());
      EXPECT_EQ(it->second, iter->value().ToString());
      ++it;
      iter->Next();
    }
  }
}

TEST_P(DbTest, ReopenPreservesData) {
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(Put(Key(i), "persisted" + std::to_string(i)).ok());
  }
  auto before = Dump();
  Reopen();
  EXPECT_EQ(before, Dump());
  EXPECT_EQ("persisted123", Get(Key(123)));
}

TEST_P(DbTest, ReopenWithUnflushedWal) {
  // Small write set that stays in the memtable (no flush), then reopen:
  // recovery must come from the WAL.
  ASSERT_TRUE(Put("wal1", "a").ok());
  ASSERT_TRUE(Put("wal2", "b").ok());
  ASSERT_TRUE(Delete("wal1").ok());
  Reopen();
  EXPECT_EQ("NOT_FOUND", Get("wal1"));
  EXPECT_EQ("b", Get("wal2"));
}

TEST_P(DbTest, RepeatedReopen) {
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(
          Put(Key(i + round * 500), "r" + std::to_string(round)).ok());
    }
    Reopen();
  }
  EXPECT_EQ(2500u, Dump().size());
  EXPECT_EQ("r0", Get(Key(0)));
  EXPECT_EQ("r4", Get(Key(2400)));
}

TEST_P(DbTest, GetStatsSane) {
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(Put(Key(i), std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  DbStats stats = db_->GetStats();
  EXPECT_GT(stats.user_bytes, 5000u * 100u);
  EXPECT_GT(stats.space_used_bytes, 0u);
  EXPECT_GE(stats.total_write_amp, 0.9);  // every byte written at least ~once
  EXPECT_FALSE(stats.level_bytes.empty());
}

TEST_P(DbTest, GetPropertyReportsState) {
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(Put(Key(i), std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(db_->WaitForQuiescence().ok());

  std::string value;
  ASSERT_TRUE(db_->GetProperty("iamdb.stats", &value));
  EXPECT_NE(std::string::npos, value.find("total_wamp"));
  EXPECT_NE(std::string::npos, value.find("space="));

  ASSERT_TRUE(db_->GetProperty("iamdb.levels", &value));
  EXPECT_NE(std::string::npos, value.find("nodes"));

  ASSERT_TRUE(db_->GetProperty("iamdb.approximate-memory-usage", &value));
  EXPECT_GT(std::stoull(value), 0u);

  EXPECT_FALSE(db_->GetProperty("iamdb.unknown", &value));
}

TEST_P(DbTest, OpenRejectsInvalidOptions) {
  auto expect_invalid = [&](Options options) {
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, "/invalid", &db);
    EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  };
  Options base = MakeOptions();

  Options o = base;
  o.env = nullptr;
  expect_invalid(o);

  o = base;
  o.node_capacity = 16;
  expect_invalid(o);

  o = base;
  o.table.block_size = 7;
  expect_invalid(o);

  o = base;
  o.background_threads = 0;
  expect_invalid(o);

  if (base.engine == EngineType::kAmt) {
    o = base;
    o.amt.fanout = 1;
    expect_invalid(o);

    o = base;
    o.amt.k = 0;
    expect_invalid(o);
  } else {
    o = base;
    o.leveled.level_multiplier = 1;
    expect_invalid(o);
  }
}

TEST_P(DbTest, DestroyRemovesFiles) {
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->FlushAll().ok());
  db_.reset();
  Options options = MakeOptions();
  ASSERT_TRUE(DestroyDB("/db", options).ok());
  EXPECT_EQ(0u, env_->TotalBytes());
}

TEST_P(DbTest, RandomizedModelCheck) {
  Random rnd(99);
  std::map<std::string, std::string> model;
  const Snapshot* snap = nullptr;
  std::map<std::string, std::string> snap_model;

  for (int i = 0; i < 30000; i++) {
    int op = rnd.Uniform(100);
    std::string k = Key(rnd.Uniform(2000));
    if (op < 60) {
      std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(Put(k, v).ok());
      model[k] = v;
    } else if (op < 85) {
      ASSERT_TRUE(Delete(k).ok());
      model.erase(k);
    } else if (op < 90 && snap == nullptr) {
      snap = db_->GetSnapshot();
      snap_model = model;
    } else if (op < 95 && snap != nullptr) {
      // Verify a random key through the snapshot.
      std::string probe = Key(rnd.Uniform(2000));
      auto it = snap_model.find(probe);
      std::string got = Get(probe, snap);
      if (it == snap_model.end()) {
        EXPECT_EQ("NOT_FOUND", got) << probe;
      } else {
        EXPECT_EQ(it->second, got) << probe;
      }
      if (rnd.OneIn(4)) {
        db_->ReleaseSnapshot(snap);
        snap = nullptr;
      }
    } else {
      std::string probe = Key(rnd.Uniform(2000));
      auto it = model.find(probe);
      std::string got = Get(probe);
      if (it == model.end()) {
        EXPECT_EQ("NOT_FOUND", got) << probe;
      } else {
        EXPECT_EQ(it->second, got) << probe;
      }
    }
  }
  if (snap != nullptr) db_->ReleaseSnapshot(snap);
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  EXPECT_EQ(model, Dump());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, DbTest,
                         testing::Values(Config::kLeveled,
                                         Config::kLeveledStrict, Config::kLsa,
                                         Config::kIam),
                         [](const testing::TestParamInfo<Config>& info) {
                           return ConfigName(info.param);
                         });

}  // namespace
}  // namespace iamdb
