// Memory-arbiter tests (core/memory_arbiter.h): the pure control law, the
// step/clamp mechanics and cache eviction on re-division, Open-time budget
// validation, the write quota driving memtable rotation, and the headline
// equivalence property — a DB retuned online through forced arbiter steps
// installs the same logical tree as a fresh Open with the final division,
// for all three engines.
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/db_impl.h"
#include "core/memory_arbiter.h"
#include "env/mem_env.h"
#include "shard/sharded_db.h"
#include "table/cache.h"
#include "test_seed.h"
#include "util/random.h"
#include "util/rate_limiter.h"

namespace iamdb {
namespace {

// Deterministic clock: time moves only when the test advances it.
class ManualClock : public RateClock {
 public:
  uint64_t NowMicros() override { return now_; }
  void WaitFor(std::condition_variable&, std::unique_lock<std::mutex>&,
               uint64_t micros) override {
    now_ += micros;
  }
  void Advance(uint64_t micros) { now_ += micros; }

 private:
  uint64_t now_ = 1;
};

Options ArbiterOnlyOptions() {
  // Standalone arbiter (no DB): 16MB pool over a 1MB memtable and both
  // cache tiers weighted 3:1.
  Options options;
  options.memory_budget_bytes = 16 << 20;
  options.node_capacity = 1 << 20;
  options.block_cache_capacity = 48 << 20;
  options.compressed_cache_capacity = 16 << 20;
  return options;
}

TEST(MemoryArbiterTest, InitialDivisionRespectsFloorsAndRatio) {
  Options options = ArbiterOnlyOptions();
  MemoryArbiter arbiter(options);
  // initial_write_fraction 0.25 of 16MB = 4MB, within [1MB, 14MB].
  EXPECT_EQ(arbiter.write_quota(), 4u << 20);
  EXPECT_EQ(arbiter.read_target(), 12u << 20);
  // Tiers split the read share 3:1 (the configured capacity ratio) and
  // always sum to it exactly.
  EXPECT_EQ(arbiter.uncompressed_target() + arbiter.compressed_target(),
            arbiter.read_target());
  EXPECT_EQ(arbiter.uncompressed_target(), 9u << 20);
  EXPECT_EQ(arbiter.compressed_target(), 3u << 20);
}

TEST(MemoryArbiterTest, DecideControlLaw) {
  Options options = ArbiterOnlyOptions();
  MemoryArbiter arbiter(options);
  const uint64_t high_debt = options.pacing.debt_high_bytes;
  using Shift = MemoryArbiter::Shift;
  // Stalls past the threshold pull budget to the write side...
  EXPECT_EQ(arbiter.Decide(60, 0, 0), Shift::kToWrite);
  // ...and win over a simultaneous read signal (a stalled writer is the
  // sharper starvation)...
  EXPECT_EQ(arbiter.Decide(60, 500, 0), Shift::kToWrite);
  // ...unless compaction debt is past the pacing watermark: the stall is
  // merge-bound, growing the memtable would not help.
  EXPECT_EQ(arbiter.Decide(60, 0, high_debt), Shift::kNone);
  EXPECT_EQ(arbiter.Decide(60, 500, high_debt), Shift::kNone);
  // Misses past the threshold (stalls quiet) push budget to the caches.
  EXPECT_EQ(arbiter.Decide(0, 250, 0), Shift::kToRead);
  EXPECT_EQ(arbiter.Decide(10, 250, high_debt), Shift::kToRead);
  // Both quiet: hold.
  EXPECT_EQ(arbiter.Decide(10, 100, 0), Shift::kNone);
}

TEST(MemoryArbiterTest, ForceStepClampsAtFloors) {
  Options options = ArbiterOnlyOptions();
  MemoryArbiter arbiter(options);
  // Walk to the write ceiling: budget minus the two tier minimums.
  int steps = 0;
  while (arbiter.ForceStep(MemoryArbiter::Shift::kToWrite)) steps++;
  EXPECT_GT(steps, 0);
  EXPECT_EQ(arbiter.write_quota(),
            options.memory_budget_bytes -
                2 * MemoryArbiter::MinReadBytesPerTier());
  // Each tier keeps its minimum allotment even at the ceiling.
  EXPECT_GE(arbiter.uncompressed_target(),
            MemoryArbiter::MinReadBytesPerTier());
  EXPECT_GE(arbiter.compressed_target(),
            MemoryArbiter::MinReadBytesPerTier());
  // Walk back to the floor: one memtable.
  while (arbiter.ForceStep(MemoryArbiter::Shift::kToRead)) steps++;
  EXPECT_EQ(arbiter.write_quota(), options.node_capacity);
  EXPECT_EQ(arbiter.shifts(), static_cast<uint64_t>(steps));
  EXPECT_FALSE(arbiter.ForceStep(MemoryArbiter::Shift::kNone));
}

TEST(MemoryArbiterTest, StepTowardWriteEvictsCaches) {
  Options options = ArbiterOnlyOptions();
  MemoryArbiter arbiter(options);
  LruCache block_cache(arbiter.uncompressed_target());
  LruCache compressed_cache(arbiter.compressed_target());
  arbiter.AttachCaches(&block_cache, &compressed_cache);

  // Fill the uncompressed tier near capacity.
  for (uint64_t i = 0; i < 1000; i++) {
    block_cache.Insert(BlockCacheKey{i, 0},
                       std::make_shared<const int>(static_cast<int>(i)),
                       8 << 10);
  }
  ASSERT_GT(block_cache.usage(), (4u << 20));

  // One step toward the write side: both tiers must adopt the new targets
  // and the over-budget tier must evict immediately.
  ASSERT_TRUE(arbiter.ForceStep(MemoryArbiter::Shift::kToWrite));
  EXPECT_EQ(block_cache.capacity(), arbiter.uncompressed_target());
  EXPECT_EQ(compressed_cache.capacity(), arbiter.compressed_target());
  EXPECT_LE(block_cache.usage(), block_cache.capacity());
}

TEST(MemoryArbiterTest, RebalanceFoldsSignalsAndMoves) {
  Options options = ArbiterOnlyOptions();
  ManualClock clock;
  MemoryArbiter arbiter(options, &clock);
  LruCache block_cache(arbiter.uncompressed_target());
  LruCache compressed_cache(arbiter.compressed_target());
  arbiter.AttachCaches(&block_cache, &compressed_cache);
  const uint64_t interval = options.arbiter.retune_interval_micros;
  const uint64_t start_quota = arbiter.write_quota();

  // Before the interval elapses: no rebalance.
  EXPECT_FALSE(arbiter.RetuneDue());
  EXPECT_FALSE(arbiter.MaybeRebalance(0, 0));

  // A fully stalled interval: stall EWMA jumps to 500 per mille, well past
  // the threshold — the split moves toward the write side.
  clock.Advance(interval + 1);
  ASSERT_TRUE(arbiter.RetuneDue());
  EXPECT_TRUE(arbiter.MaybeRebalance(/*stall_micros_total=*/interval,
                                     /*debt_bytes=*/0));
  EXPECT_GT(arbiter.write_quota(), start_quota);

  // Stall-free intervals decay the stall EWMA (500 -> 250 -> 125 -> 62 ->
  // 31); the early ones may still step toward write until it crosses back
  // under the threshold.
  for (int i = 0; i < 4; i++) {
    clock.Advance(interval + 1);
    arbiter.MaybeRebalance(interval, 0);
  }

  // Now a miss storm with stalls quiet: every lookup misses, the miss
  // EWMA jumps past the threshold, the split moves back toward the reads.
  const uint64_t grown_quota = arbiter.write_quota();
  for (uint64_t i = 0; i < 200; i++) {
    block_cache.Lookup(BlockCacheKey{i, 4096});
  }
  clock.Advance(interval + 1);
  EXPECT_TRUE(arbiter.MaybeRebalance(interval, 0));
  EXPECT_LT(arbiter.write_quota(), grown_quota);

  // Hit traffic decays the miss EWMA (500 -> 250 -> 125); once both
  // signals are under their thresholds the split holds.  (Intervals with
  // NO lookups would hold the miss EWMA instead — a write-only lull must
  // not erase the evidence that reads were starved.)
  block_cache.Insert(BlockCacheKey{1, 1}, std::make_shared<const int>(1), 64);
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 200; j++) block_cache.Lookup(BlockCacheKey{1, 1});
    clock.Advance(interval + 1);
    arbiter.MaybeRebalance(interval, 0);
  }
  const uint64_t settled = arbiter.write_quota();
  for (int j = 0; j < 200; j++) block_cache.Lookup(BlockCacheKey{1, 1});
  clock.Advance(interval + 1);
  EXPECT_FALSE(arbiter.MaybeRebalance(interval, 0));
  EXPECT_EQ(arbiter.write_quota(), settled);
  EXPECT_GE(arbiter.retunes(), arbiter.shifts());
}

// ---- Open-time validation ----

TEST(MemoryArbiterTest, OpenRejectsInvalidBudgets) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.node_capacity = 1 << 20;
  std::unique_ptr<DB> db;

  // Below the floor: one memtable + 1MB for the single cache tier.
  options.memory_budget_bytes = (1 << 20) + (1 << 19);
  Status s = DB::Open(options, "/db", &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // With the compressed tier on, the floor grows by another tier minimum.
  options.memory_budget_bytes = (1 << 20) + (1 << 20) + (1 << 19);
  options.compressed_cache_capacity = 8 << 20;
  s = DB::Open(options, "/db", &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  options.compressed_cache_capacity = 0;

  // Knob sanity.
  options.memory_budget_bytes = 64 << 20;
  options.arbiter.initial_write_fraction = 0;
  EXPECT_TRUE(DB::Open(options, "/db", &db).IsInvalidArgument());
  options.arbiter.initial_write_fraction = 1.0;
  EXPECT_TRUE(DB::Open(options, "/db", &db).IsInvalidArgument());
  options.arbiter.initial_write_fraction = 0.25;
  options.arbiter.step_fraction = 0;
  EXPECT_TRUE(DB::Open(options, "/db", &db).IsInvalidArgument());
  options.arbiter.step_fraction = 1.0 / 16;
  options.arbiter.retune_interval_micros = 0;
  EXPECT_TRUE(DB::Open(options, "/db", &db).IsInvalidArgument());
  options.arbiter.retune_interval_micros = 50 * 1000;

  // The AMT tuner's budget fraction must be a usable fraction.
  options.engine = EngineType::kAmt;
  options.amt.memory_budget_fraction = 0;
  EXPECT_TRUE(DB::Open(options, "/db", &db).IsInvalidArgument());
  options.amt.memory_budget_fraction = 1.5;
  EXPECT_TRUE(DB::Open(options, "/db", &db).IsInvalidArgument());
  options.amt.memory_budget_fraction = 0.5;

  // And the repaired configuration opens.
  EXPECT_TRUE(DB::Open(options, "/db", &db).ok());
}

// ---- DB-level behaviour ----

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

TEST(MemoryArbiterTest, WriteQuotaControlsRotation) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.node_capacity = 32 << 10;
  options.memory_budget_bytes = 2 << 20;
  options.arbiter.initial_write_fraction = 0.5;  // 1MB quota
  // Keep the arbiter from retuning on its own: only forced steps move.
  options.arbiter.retune_interval_micros = 1ull << 40;
  options.background_threads = 1;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  // 200KB of writes: far past node_capacity, but under the 1MB quota — the
  // memtable must NOT rotate (nothing reaches disk tables).
  std::string value(1000, 'v');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  EXPECT_EQ(db->GetStats().space_used_bytes, 0u)
      << "rotated below the write quota";

  // Shrink the write side to the floor; the oversized memtable now rotates
  // on the next write.
  auto* impl = static_cast<DBImpl*>(db.get());
  while (impl->ForceMemoryStep(MemoryArbiter::Shift::kToRead)) {
  }
  DbStats stats = db->GetStats();
  EXPECT_EQ(stats.arbiter_write_bytes, options.node_capacity);
  ASSERT_TRUE(db->Put(WriteOptions(), Key(999), value).ok());
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  EXPECT_GT(db->GetStats().space_used_bytes, 0u);

  // Gauges: budget conserved, split sums, steps counted, property line on.
  stats = db->GetStats();
  EXPECT_EQ(stats.arbiter_budget_bytes, options.memory_budget_bytes);
  EXPECT_EQ(stats.arbiter_write_bytes + stats.arbiter_read_bytes,
            stats.arbiter_budget_bytes);
  EXPECT_GT(stats.arbiter_shifts, 0u);
  std::string text;
  ASSERT_TRUE(db->GetProperty("iamdb.stats", &text));
  EXPECT_NE(text.find("arbiter"), std::string::npos);
}

// ---- Online retuning vs fresh-open equivalence ----

struct EngineConfig {
  EngineType engine;
  AmtPolicy policy;
  const char* name;
};

// Seeded history in rounds small enough to stay under the floor quota, a
// full drain after each — flush boundaries depend only on the FlushAll
// barriers, which both DBs share (subcompaction_test uses the same
// construction for its determinism argument).
void ApplyRounds(DB* db, uint64_t seed, int rounds, int keyspace) {
  Random64 rnd(seed);
  for (int r = 0; r < rounds; r++) {
    for (int i = 0; i < 80; i++) {
      int k = static_cast<int>(rnd.Next() % keyspace);
      if (rnd.Next() % 8 == 0) {
        ASSERT_TRUE(db->Delete(WriteOptions(), Key(k)).ok());
      } else {
        std::string value = "v" + std::to_string(rnd.Next() % 1000) + "-" +
                            std::string(1 + rnd.Next() % 100, 'x');
        ASSERT_TRUE(db->Put(WriteOptions(), Key(k), value).ok());
      }
    }
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->WaitForQuiescence().ok());
  }
}

std::string StreamLines(const std::string& digest) {
  std::istringstream in(digest);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find(" stream ") != std::string::npos) out += line + "\n";
  }
  return out;
}

std::string Scan(DB* db) {
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  std::string out;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out += it->key().ToString() + "=" + it->value().ToString() + ";";
  }
  EXPECT_TRUE(it->status().ok());
  return out;
}

class ArbiterEquivalenceTest : public testing::TestWithParam<EngineConfig> {};

// A DB whose memory division was retuned online (quota walked from 50% of
// the pool down to the floor, with the engine re-running its (m,k) tuner
// after every step) must end with the same logical tree as a control DB
// opened fresh with the final division — the ISSUE's acceptance property:
// live retuning converges to exactly the state it would have been
// configured into.
TEST_P(ArbiterEquivalenceTest, OnlineRetuneMatchesFreshOpenWithFinalSplit) {
  const uint64_t seed = test::TestSeed(20260807);
  SCOPED_TRACE(test::SeedTrace(seed));

  const uint64_t kNodeCapacity = 24 << 10;
  const uint64_t kBudget = (4ull << 20) + kNodeCapacity;

  auto base_options = [&](Env* env) {
    Options options;
    options.env = env;
    options.engine = GetParam().engine;
    options.amt.policy = GetParam().policy;
    options.node_capacity = kNodeCapacity;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    options.leveled.max_bytes_level1 = 96 << 10;
    options.leveled.target_file_size = 12 << 10;
    options.table.compression = test::TestCompression();
    options.background_threads = 1;
    options.max_subcompactions = 1;
    return options;
  };

  // Live DB: pooled budget, quota starts at ~50%.  A huge retune interval
  // pins the division between the deterministic forced steps.
  MemEnv live_env;
  Options live_options = base_options(&live_env);
  live_options.memory_budget_bytes = kBudget;
  live_options.arbiter.initial_write_fraction = 0.5;
  live_options.arbiter.retune_interval_micros = 1ull << 40;
  std::unique_ptr<DB> live;
  ASSERT_TRUE(DB::Open(live_options, "/live", &live).ok());

  // Phase A: a little data, all below even the floor quota — no rotation
  // anywhere, so the retunes below happen against identical (empty) trees.
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(live->Put(WriteOptions(), Key(2000 + i),
                          "a" + std::string(100, 'p'))
                    .ok());
  }

  // Walk the split to its final division: write floor (one memtable), the
  // whole remainder to the cache.  Each step re-runs the engine's tuner.
  auto* impl = static_cast<DBImpl*>(live.get());
  int steps = 0;
  while (impl->ForceMemoryStep(MemoryArbiter::Shift::kToRead)) steps++;
  EXPECT_GE(steps, 2);
  DbStats mid = live->GetStats();
  ASSERT_EQ(mid.arbiter_write_bytes, kNodeCapacity);
  ASSERT_EQ(mid.arbiter_read_bytes, kBudget - kNodeCapacity);

  // Phase B: grow a real tree through the final division.
  ApplyRounds(live.get(), seed, 60, 900);
  ASSERT_TRUE(live->CheckInvariants(true).ok());

  // Control: fresh DB configured directly with the final division — same
  // rotation threshold, same cache capacity, no arbiter.
  MemEnv control_env;
  Options control_options = base_options(&control_env);
  control_options.block_cache_capacity = kBudget - kNodeCapacity;
  std::unique_ptr<DB> control;
  ASSERT_TRUE(DB::Open(control_options, "/control", &control).ok());
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(control
                    ->Put(WriteOptions(), Key(2000 + i),
                          "a" + std::string(100, 'p'))
                    .ok());
  }
  ApplyRounds(control.get(), seed, 60, 900);
  ASSERT_TRUE(control->CheckInvariants(true).ok());

  // Same visible contents and the same physical tree.
  EXPECT_EQ(Scan(live.get()), Scan(control.get()));
  std::string live_digest, control_digest;
  ASSERT_TRUE(live->GetProperty("iamdb.tree-digest", &live_digest));
  ASSERT_TRUE(control->GetProperty("iamdb.tree-digest", &control_digest));
  ASSERT_FALSE(live_digest.empty());
  if (GetParam().engine == EngineType::kAmt) {
    EXPECT_EQ(live_digest, control_digest);
  } else {
    EXPECT_EQ(StreamLines(live_digest), StreamLines(control_digest));
  }

  // The AMT engines must have lived through real (m,k) changes — the test
  // is vacuous if the mixed level never moved — and still agree with the
  // control's final choice.
  DbStats live_stats = live->GetStats();
  DbStats control_stats = control->GetStats();
  if (GetParam().engine == EngineType::kAmt) {
    EXPECT_GE(live_stats.mixed_level_retunes, 2u) << GetParam().name;
    EXPECT_EQ(live_stats.mixed_level, control_stats.mixed_level);
    EXPECT_EQ(live_stats.mixed_level_k, control_stats.mixed_level_k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ArbiterEquivalenceTest,
    testing::Values(EngineConfig{EngineType::kLeveled, AmtPolicy::kLsa,
                                 "leveled"},
                    EngineConfig{EngineType::kAmt, AmtPolicy::kLsa, "lsa"},
                    EngineConfig{EngineType::kAmt, AmtPolicy::kIam, "iam"}),
    [](const testing::TestParamInfo<EngineConfig>& info) {
      return info.param.name;
    });

// ---- ShardedDB ----

TEST(MemoryArbiterTest, ShardedOpenDividesBudget) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.node_capacity = 256 << 10;
  options.memory_budget_bytes = 16 << 20;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/sharded", 4, &db).ok());

  std::string value(100, 's');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), value).ok());
  }
  for (int i = 0; i < 200; i++) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &got).ok());
    EXPECT_EQ(got, value);
  }
  // Aggregated stats: each shard arbitrates a quarter of the pool, so the
  // summed budget reconstructs the configured total.
  DbStats stats = db->GetStats();
  EXPECT_EQ(stats.arbiter_budget_bytes, options.memory_budget_bytes);
  EXPECT_EQ(stats.arbiter_write_bytes + stats.arbiter_read_bytes,
            stats.arbiter_budget_bytes);
}

}  // namespace
}  // namespace iamdb
