// LeveledEngine-specific behaviour: L0 overlap semantics, trivial moves on
// sequential loads, level thresholds, strict-vs-lax overflow behaviour and
// stall pressure signals.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/db.h"
#include "env/mem_env.h"
#include "util/random.h"

namespace iamdb {
namespace {

class LeveledTest : public testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.env = &env_;
    options.engine = EngineType::kLeveled;
    options.node_capacity = 32 << 10;  // memtable threshold
    options.table.block_size = 1024;
    options.leveled.max_bytes_level1 = 128 << 10;
    options.leveled.target_file_size = 16 << 10;
    options.block_cache_capacity = 1 << 20;
    return options;
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  DbStats Load(DB* db, int n, bool sequential) {
    Random64 rnd(3);
    std::string value(100, 'v');
    for (int i = 0; i < n; i++) {
      int k = sequential ? i : static_cast<int>(rnd.Next() % 1000000);
      EXPECT_TRUE(db->Put(WriteOptions(), Key(k), value).ok());
    }
    EXPECT_TRUE(db->WaitForQuiescence().ok());
    return db->GetStats();
  }

  MemEnv env_;
};

TEST_F(LeveledTest, SequentialLoadUsesTrivialMoves) {
  Options options = BaseOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  DbStats stats = Load(db.get(), 40000, /*sequential=*/true);
  // Non-overlapping files sink by moves: write amp stays near 1.
  EXPECT_LT(stats.total_write_amp, 1.6);
  EXPECT_GT(db->amp_stats().reason_bytes(WriteReason::kFlush), 0u);
}

TEST_F(LeveledTest, HashLoadSpreadsAcrossLevels) {
  Options options = BaseOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  DbStats stats = Load(db.get(), 60000, /*sequential=*/false);
  int populated = 0;
  for (int count : stats.level_node_counts) {
    if (count > 0) populated++;
  }
  EXPECT_GE(populated, 3) << "expected a multi-level tree";
  EXPECT_GT(stats.total_write_amp, 2.0) << "leveled merges must rewrite";
  EXPECT_TRUE(db->CheckInvariants(true).ok());
}

TEST_F(LeveledTest, L0OverlapReadsNewestFirst) {
  Options options = BaseOptions();
  // Huge L1 threshold + trigger so L0 files pile up without compaction.
  options.leveled.l0_compaction_trigger = 100;
  options.leveled.l0_slowdown_trigger = 200;
  options.leveled.l0_stop_trigger = 300;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  std::string filler(100, 'f');
  // Several memtable generations of the SAME key: each flush makes an L0
  // file overlapping the previous ones.
  for (int gen = 0; gen < 5; gen++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), "hot", "gen" + std::to_string(gen)).ok());
    for (int i = 0; i < 400; i++) {  // force a flush
      ASSERT_TRUE(db->Put(WriteOptions(), Key(gen * 1000 + i), filler).ok());
    }
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  DbStats stats = db->GetStats();
  ASSERT_GE(stats.level_node_counts[0], 2) << "test needs L0 overlap";
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "hot", &value).ok());
  EXPECT_EQ("gen4", value) << "newest L0 file must win";
}

TEST_F(LeveledTest, StrictModeLimitsOverflow) {
  // Same load; lax (LevelDB-style) vs strict (RocksDB-style).  Strict mode
  // must keep the pending-compaction debt bounded.
  auto overflow_bytes = [&](bool strict, const std::string& name) {
    Options options = BaseOptions();
    options.leveled.strict_level_limits = strict;
    // This test compares the LevelDB-lazy and RocksDB-strict compaction
    // flavours; greedy most-debt-first picks would drain the lax run's
    // overflow too, erasing the contrast being asserted.
    options.greedy_compaction = false;
    options.leveled.soft_pending_bytes = 64 << 10;
    options.leveled.hard_pending_bytes = 256 << 10;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, name, &db).ok());
    Random64 rnd(9);
    std::string value(100, 'v');
    // The paper's overflow happens DURING load, so track the peak debt
    // across periodic samples — a single post-load sample races with the
    // background thread, which can drain the lax run's debt to zero
    // between the last Put and the measurement.
    uint64_t debt = 0;
    auto sample = [&] {
      DbStats stats = db->GetStats();
      uint64_t now = 0;
      uint64_t limit = 128 << 10;  // L1
      for (size_t level = 1; level < stats.level_bytes.size(); level++) {
        if (stats.level_bytes[level] > limit) {
          now += stats.level_bytes[level] - limit;
        }
        limit *= 10;
      }
      debt = std::max(debt, now);
    };
    for (int i = 0; i < 50000; i++) {
      EXPECT_TRUE(
          db->Put(WriteOptions(), Key(rnd.Next() % 1000000), value).ok());
      if (i % 1000 == 999) sample();
    }
    sample();
    EXPECT_TRUE(db->WaitForQuiescence().ok());
    return debt;
  };
  uint64_t lax_debt = overflow_bytes(false, "/lax");
  uint64_t strict_debt = overflow_bytes(true, "/strict");
  // Strict mode stalls writers instead of accumulating debt.
  EXPECT_LE(strict_debt, lax_debt);
}

TEST_F(LeveledTest, OverwriteChurnIsReclaimed) {
  // Merges eliminate outdated records when compaction traffic flows
  // through their key range (reclamation is lazy in leveled LSMs, tied to
  // overlapping compactions — Sec 6.7 measures exactly this shape).
  Options options = BaseOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  std::string value(100, 'v');
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  uint64_t full = db->GetStats().space_used_bytes;

  // Rewrite the same keys three more times: 4x the bytes enter the tree.
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 10000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), Key(i), value).ok());
    }
  }
  ASSERT_TRUE(db->FlushAll().ok());

  // Shadowed versions are dropped along the way: far less than 4x remains.
  uint64_t after = db->GetStats().space_used_bytes;
  EXPECT_LT(after, full * 2);

  // Tombstones hide data immediately even before physical reclamation.
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(db->Delete(WriteOptions(), Key(i)).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  std::string v;
  EXPECT_TRUE(db->Get(ReadOptions(), Key(1234), &v).IsNotFound());
}

TEST_F(LeveledTest, ScanSeesAllLevelsInOrder) {
  Options options = BaseOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  // Interleave old (compacted deep) and fresh (L0/memtable) data.
  std::string value(100, 'v');
  for (int i = 0; i < 20000; i += 2) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "old").ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  for (int i = 1; i < 20000; i += 2) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "new").ok());
  }
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  int count = 0;
  std::string prev;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    std::string cur = iter->key().ToString();
    EXPECT_LT(prev, cur);
    prev = cur;
    EXPECT_EQ(count % 2 == 0 ? "old" : "new", iter->value().ToString());
  }
  EXPECT_EQ(20000, count);
}

TEST_F(LeveledTest, CompactionPointerRoundRobins) {
  Options options = BaseOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  // Two widely separated key clusters: round-robin compaction must touch
  // both over time, keeping both readable.
  std::string value(100, 'v');
  Random64 rnd(21);
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 4000; i++) {
      int base = (rnd.Next() % 2 == 0) ? 0 : 5000000;
      ASSERT_TRUE(
          db->Put(WriteOptions(), Key(base + static_cast<int>(rnd.Next() % 2000)), value)
              .ok());
    }
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  EXPECT_TRUE(db->CheckInvariants(true).ok());
  std::string v;
  int found = 0;
  for (int i = 0; i < 2000; i += 37) {
    if (db->Get(ReadOptions(), Key(i), &v).ok()) found++;
    if (db->Get(ReadOptions(), Key(5000000 + i), &v).ok()) found++;
  }
  EXPECT_GT(found, 50);
}

}  // namespace
}  // namespace iamdb
