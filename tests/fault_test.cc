// Failure-injection tests: FaultInjectionEnv starts failing writes after
// a budget is exhausted.  The database must surface errors (not corrupt
// state), keep already-durable data readable, and recover fully once the
// fault clears and the store is reopened.
#include <gtest/gtest.h>

#include "core/db.h"
#include "env/fault_injection_env.h"
#include "env/mem_env.h"
#include "test_seed.h"
#include "util/random.h"

namespace iamdb {
namespace {

class FaultTest : public testing::TestWithParam<EngineType> {
 protected:
  FaultTest() : faulty_(&mem_) {}

  Options MakeOptions() {
    Options options;
    options.env = &faulty_;
    options.engine = GetParam();
    options.node_capacity = 24 << 10;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    options.leveled.max_bytes_level1 = 96 << 10;
    options.leveled.target_file_size = 12 << 10;
    options.table.compression = test::TestCompression();
    return options;
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  MemEnv mem_;
  FaultInjectionEnv faulty_;
};

TEST_P(FaultTest, WalWriteFailureSurfacesToCaller) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "before", "ok").ok());

  faulty_.SetWriteBudget(0);
  Status s = db->Put(WriteOptions(), "during", "fails");
  EXPECT_FALSE(s.ok());
  faulty_.Heal();
}

TEST_P(FaultTest, ScheduledSyncFaultSurfacesAndClears) {
  const uint64_t seed = test::TestSeed(11);
  SCOPED_TRACE(test::SeedTrace(seed));
  Options options = MakeOptions();
  options.sync_wal = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  // Every sync fails (one_in=1) but only once; the error must surface on
  // exactly one write, then the store keeps working.
  faulty_.SetErrorSchedule(kFaultSync, seed, /*one_in=*/1, /*max_failures=*/1);
  Status s = db->Put(WriteOptions(), "k1", "v1");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("injected"), std::string::npos) << s.ToString();
  faulty_.ClearErrorSchedule();
  EXPECT_TRUE(db->Put(WriteOptions(), "k2", "v2").ok());
  std::string got;
  EXPECT_TRUE(db->Get(ReadOptions(), "k2", &got).ok());
  EXPECT_EQ("v2", got);
}

TEST_P(FaultTest, CompactionFailureDoesNotLoseDurableData) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  std::string value(100, 'v');
  // Durable base data, fully settled.
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());

  // Now make background writes fail soon and pour more data in.  Writes
  // may start failing (stalls surface bg errors); that's fine — we only
  // require no corruption.
  faulty_.SetWriteBudget(200);
  for (int i = 5000; i < 20000; i++) {
    if (!db->Put(WriteOptions(), Key(i), value).ok()) break;
  }
  faulty_.Heal();
  db.reset();  // "crash" with a possibly failed compaction on disk

  // Reopen on the healed env: all previously durable keys must be intact.
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  for (int i = 0; i < 5000; i += 97) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &got).ok()) << Key(i);
    EXPECT_EQ(value, got);
  }
  // And the store must be fully usable again.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(100000 + i), value).ok());
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  EXPECT_TRUE(db->CheckInvariants(true).ok());
}

TEST_P(FaultTest, RepeatedFaultCycles) {
  const uint64_t seed = test::TestSeed(3);
  SCOPED_TRACE(test::SeedTrace(seed));
  Random64 rnd(seed);
  std::string value(100, 'v');
  std::map<std::string, std::string> durable;  // settled before each fault
  for (int cycle = 0; cycle < 3; cycle++) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
    // Verify everything durable so far.
    for (const auto& [k, v] : durable) {
      std::string got;
      ASSERT_TRUE(db->Get(ReadOptions(), k, &got).ok())
          << "cycle " << cycle << " key " << k;
      ASSERT_EQ(v, got);
    }
    // Write a settled batch...
    for (int i = 0; i < 2000; i++) {
      std::string k = Key(cycle * 100000 + i);
      ASSERT_TRUE(db->Put(WriteOptions(), k, value).ok());
      durable[k] = value;
    }
    ASSERT_TRUE(db->FlushAll().ok());
    // ...then inject a fault while writing junk that may be lost.
    faulty_.SetWriteBudget(100 + static_cast<int64_t>(rnd.Next() % 200));
    for (int i = 0; i < 5000; i++) {
      if (!db->Put(WriteOptions(), Key(900000 + i), value).ok()) break;
    }
    faulty_.Heal();
    db.reset();
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultTest,
                         testing::Values(EngineType::kLeveled,
                                         EngineType::kAmt),
                         [](const testing::TestParamInfo<EngineType>& info) {
                           return info.param == EngineType::kLeveled
                                      ? "Leveled"
                                      : "Amt";
                         });

}  // namespace
}  // namespace iamdb
