// ShardedDB: partition function pinning, SHARDMAP manifest durability,
// open/create semantics, seeded equivalence against a single instance
// across all three engines, snapshot semantics, stats aggregation, and the
// cluster-aware client (MGET routing + SCAN fan-out) against a sharded
// server.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "memtable/write_batch.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/shard_map.h"
#include "shard/sharded_db.h"
#include "table/iterator.h"
#include "test_seed.h"

namespace iamdb {
namespace {

struct EngineCase {
  const char* name;
  EngineType engine;
  AmtPolicy policy;
};

constexpr EngineCase kEngines[] = {
    {"leveled", EngineType::kLeveled, AmtPolicy::kIam},
    {"lsa", EngineType::kAmt, AmtPolicy::kLsa},
    {"iam", EngineType::kAmt, AmtPolicy::kIam},
};

Options MakeOptions(Env* env, const EngineCase& e) {
  Options options;
  options.env = env;
  options.engine = e.engine;
  options.amt.policy = e.policy;
  options.node_capacity = 64 << 10;
  options.table.block_size = 1024;
  options.amt.fanout = 4;
  options.background_threads = 2;
  return options;
}

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%05d", i);
  return buf;
}

// --- partition function ---------------------------------------------------

TEST(ShardHashTest, PinnedVectors) {
  // The hash is persistent state: every key's home shard derives from it.
  // These vectors pin FNV-1a64 + SplitMix64 exactly; if this test fails,
  // the hash changed and every existing sharded database is broken.
  EXPECT_EQ(ShardHash(Slice("")), 0xc3817c016ba4ff30ull);
  EXPECT_EQ(ShardHash(Slice("a")), 0x5f29c2aadd9b8527ull);
  EXPECT_EQ(ShardHash(Slice("user000000000042")), 0x33ecb102e98eee65ull);
  EXPECT_EQ(ShardHash(Slice("key-7")), 0xbdef35f0b254574bull);
  EXPECT_EQ(ShardHash(Slice("\x00\xff", 2)), 0x54578a4514abb9dfull);
}

TEST(ShardHashTest, SpreadsSequentialKeys) {
  // Benchmark-style sequential keys must not clump: with 4 shards and 8k
  // keys every shard should hold within 20% of the fair share.
  constexpr int kShards = 4, kKeys = 8000;
  int counts[kShards] = {};
  for (int i = 0; i < kKeys; i++) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%012d", i);
    counts[ShardOf(Slice(buf), kShards)]++;
  }
  for (int s = 0; s < kShards; s++) {
    EXPECT_GT(counts[s], kKeys / kShards * 8 / 10) << "shard " << s;
    EXPECT_LT(counts[s], kKeys / kShards * 12 / 10) << "shard " << s;
  }
}

TEST(ShardHashTest, SingleShardRoutesEverythingToZero) {
  EXPECT_EQ(ShardOf(Slice("anything"), 1), 0u);
  EXPECT_EQ(ShardOf(Slice(""), 0), 0u);
}

// --- SHARDMAP manifest ----------------------------------------------------

TEST(ShardMapTest, FormatParseRoundtrip) {
  ShardMap map;
  map.num_shards = 12;
  std::string text = FormatShardMap(map);
  EXPECT_EQ(text, "v=1 shards=12 hash=splitmix64");
  ShardMap parsed;
  ASSERT_TRUE(ParseShardMap(text, &parsed));
  EXPECT_EQ(parsed.version, 1u);
  EXPECT_EQ(parsed.num_shards, 12u);
  EXPECT_EQ(parsed.hash, "splitmix64");
  EXPECT_FALSE(ParseShardMap("shards=4", &parsed));
  EXPECT_FALSE(ParseShardMap("", &parsed));
}

TEST(ShardMapTest, FileRoundtrip) {
  MemEnv env;
  env.CreateDir("/db");
  ShardMap map;
  map.num_shards = 8;
  ASSERT_TRUE(WriteShardMapFile(&env, "/db", map).ok());
  ShardMap read;
  ASSERT_TRUE(ReadShardMapFile(&env, "/db", &read).ok());
  EXPECT_EQ(read.num_shards, 8u);
  EXPECT_EQ(read.hash, "splitmix64");
}

TEST(ShardMapTest, CorruptionDetected) {
  MemEnv env;
  env.CreateDir("/db");
  ShardMap map;
  map.num_shards = 8;
  ASSERT_TRUE(WriteShardMapFile(&env, "/db", map).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, ShardMapFileName("/db"), &contents).ok());
  // Flip the shard count in place; the CRC must catch it.
  size_t pos = contents.find("shards=8");
  ASSERT_NE(pos, std::string::npos);
  contents[pos + 7] = '9';
  ASSERT_TRUE(
      WriteStringToFile(&env, contents, ShardMapFileName("/db"), false).ok());
  ShardMap read;
  Status s = ReadShardMapFile(&env, "/db", &read);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ShardMapTest, ForeignHashRefused) {
  MemEnv env;
  env.CreateDir("/db");
  ShardMap map;
  map.num_shards = 2;
  map.hash = "xxhash3";  // valid manifest, unknown partition scheme
  ASSERT_TRUE(WriteShardMapFile(&env, "/db", map).ok());
  ShardMap read;
  Status s = ReadShardMapFile(&env, "/db", &read);
  EXPECT_TRUE(s.IsNotSupported()) << s.ToString();
}

// --- open / create semantics ----------------------------------------------

TEST(ShardedOpenTest, CreateReopenAndCountMismatch) {
  MemEnv env;
  Options options = MakeOptions(&env, kEngines[2]);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/sdb", 4, &db).ok());
  EXPECT_EQ(db->NumShards(), 4);
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "v").ok());
  db.reset();

  // num_shards == 0 adopts the persisted count.
  ASSERT_TRUE(ShardedDB::Open(options, "/sdb", 0, &db).ok());
  EXPECT_EQ(db->NumShards(), 4);
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "v");
  db.reset();

  // A different count is refused, not silently rehashed.
  Status s = ShardedDB::Open(options, "/sdb", 2, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // Matching explicit count still opens.
  ASSERT_TRUE(ShardedDB::Open(options, "/sdb", 4, &db).ok());
  db.reset();

  // Opening a nonexistent database with count 0 cannot guess a layout.
  s = ShardedDB::Open(options, "/nosuch", 0, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  ASSERT_TRUE(ShardedDB::Destroy(options, "/sdb").ok());
  s = ShardedDB::Open(options, "/sdb", 0, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// --- seeded equivalence against a single instance -------------------------

// Drives an identical random history into a ShardedDB(N) and a plain DB,
// then asserts byte-identical reads: point gets, full forward and reverse
// scans, bounded scans, and a direction-switching walk.
void RunEquivalence(const EngineCase& engine, int num_shards, uint64_t seed) {
  SCOPED_TRACE(std::string(engine.name) + " shards=" +
               std::to_string(num_shards) + " " + test::SeedTrace(seed));
  MemEnv env;
  Options options = MakeOptions(&env, engine);

  std::unique_ptr<DB> sharded, plain;
  ASSERT_TRUE(ShardedDB::Open(options, "/sharded", num_shards, &sharded).ok());
  ASSERT_TRUE(DB::Open(options, "/plain", &plain).ok());

  std::mt19937_64 rng(seed);
  constexpr int kKeySpace = 200;
  for (int i = 0; i < 600; i++) {
    const std::string key = Key(static_cast<int>(rng() % kKeySpace));
    if (rng() % 4 == 0) {
      ASSERT_TRUE(sharded->Delete(WriteOptions(), key).ok());
      ASSERT_TRUE(plain->Delete(WriteOptions(), key).ok());
    } else if (rng() % 5 == 0) {
      // Multi-record batch crossing shard boundaries.
      WriteBatch b1, b2;
      for (int j = 0; j < 8; j++) {
        const std::string bk = Key(static_cast<int>(rng() % kKeySpace));
        const std::string bv = "b" + std::to_string(i) + "." +
                               std::to_string(j);
        b1.Put(bk, bv);
        b2.Put(bk, bv);
      }
      ASSERT_TRUE(sharded->Write(WriteOptions(), &b1).ok());
      ASSERT_TRUE(plain->Write(WriteOptions(), &b2).ok());
    } else {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(sharded->Put(WriteOptions(), key, value).ok());
      ASSERT_TRUE(plain->Put(WriteOptions(), key, value).ok());
    }
  }
  ASSERT_TRUE(sharded->WaitForQuiescence().ok());
  ASSERT_TRUE(plain->WaitForQuiescence().ok());

  // Point reads, present and absent keys alike.
  for (int i = 0; i < kKeySpace + 10; i++) {
    std::string sv, pv;
    Status ss = sharded->Get(ReadOptions(), Key(i), &sv);
    Status ps = plain->Get(ReadOptions(), Key(i), &pv);
    ASSERT_EQ(ss.ok(), ps.ok()) << Key(i);
    ASSERT_EQ(ss.IsNotFound(), ps.IsNotFound()) << Key(i);
    if (ss.ok()) ASSERT_EQ(sv, pv) << Key(i);
  }

  auto Collect = [](Iterator* it) {
    std::vector<std::pair<std::string, std::string>> out;
    for (; it->Valid(); it->Next()) {
      out.emplace_back(it->key().ToString(), it->value().ToString());
    }
    EXPECT_TRUE(it->status().ok());
    return out;
  };

  // Full forward scan.
  std::unique_ptr<Iterator> si(sharded->NewIterator(ReadOptions()));
  std::unique_ptr<Iterator> pi(plain->NewIterator(ReadOptions()));
  si->SeekToFirst();
  pi->SeekToFirst();
  auto sharded_all = Collect(si.get());
  auto plain_all = Collect(pi.get());
  ASSERT_EQ(sharded_all, plain_all);
  ASSERT_FALSE(plain_all.empty());

  // Full reverse scan.
  si->SeekToLast();
  pi->SeekToLast();
  std::vector<std::pair<std::string, std::string>> sharded_rev, plain_rev;
  for (; si->Valid(); si->Prev()) {
    sharded_rev.emplace_back(si->key().ToString(), si->value().ToString());
  }
  for (; pi->Valid(); pi->Prev()) {
    plain_rev.emplace_back(pi->key().ToString(), pi->value().ToString());
  }
  ASSERT_TRUE(si->status().ok());
  ASSERT_EQ(sharded_rev, plain_rev);

  // Bounded scan from a random interior key.
  const std::string bound = Key(static_cast<int>(rng() % kKeySpace));
  si->Seek(bound);
  pi->Seek(bound);
  for (int steps = 0; steps < 25 && pi->Valid(); steps++) {
    ASSERT_TRUE(si->Valid());
    ASSERT_EQ(si->key().ToString(), pi->key().ToString());
    ASSERT_EQ(si->value().ToString(), pi->value().ToString());
    si->Next();
    pi->Next();
  }

  // Direction switches, the merge's hardest case: forward a few, reverse a
  // few, forward again.
  si->Seek(bound);
  pi->Seek(bound);
  auto Step = [&](bool forward) {
    ASSERT_EQ(si->Valid(), pi->Valid());
    if (!pi->Valid()) return;
    if (forward) {
      si->Next();
      pi->Next();
    } else {
      si->Prev();
      pi->Prev();
    }
    ASSERT_EQ(si->Valid(), pi->Valid());
    if (pi->Valid()) {
      ASSERT_EQ(si->key().ToString(), pi->key().ToString());
      ASSERT_EQ(si->value().ToString(), pi->value().ToString());
    }
  };
  for (bool forward : {true, true, true, false, false, true, false, true}) {
    Step(forward);
  }
}

TEST(ShardedEquivalenceTest, AllEnginesAllShardCounts) {
  const uint64_t seed = test::TestSeed(20260807);
  for (const EngineCase& engine : kEngines) {
    for (int shards : {1, 2, 4}) {
      RunEquivalence(engine, shards, seed + shards);
    }
  }
}

// Batched reads group keys per shard and issue one native MultiGet each;
// results must match per-key routed Gets, including at a pinned sharded
// snapshot.
TEST(ShardedMultiGetTest, MatchesPerKeyGets) {
  const uint64_t seed = test::TestSeed(20260808);
  for (int num_shards : {1, 2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    MemEnv env;
    Options options = MakeOptions(&env, kEngines[2]);
    std::unique_ptr<DB> db;
    ASSERT_TRUE(ShardedDB::Open(options, "/db", num_shards, &db).ok());

    std::mt19937_64 rng(seed + num_shards);
    constexpr int kKeySpace = 300;
    for (int i = 0; i < 900; i++) {
      const std::string key = Key(static_cast<int>(rng() % kKeySpace));
      if (rng() % 5 == 0) {
        ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      } else {
        ASSERT_TRUE(
            db->Put(WriteOptions(), key, "v" + std::to_string(i)).ok());
      }
    }

    const Snapshot* snap = db->GetSnapshot();
    for (int i = 0; i < kKeySpace; i += 2) {
      ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "post-snap").ok());
    }

    std::vector<std::string> keys;
    for (int i = 0; i < kKeySpace + 10; i++) keys.push_back(Key(i));
    keys.push_back(keys[3]);  // duplicate
    std::vector<Slice> slices;
    for (const std::string& k : keys) slices.emplace_back(k);

    for (bool pinned : {false, true}) {
      ReadOptions ro;
      if (pinned) ro.snapshot = snap;
      std::vector<std::string> values(keys.size());
      std::vector<Status> statuses(keys.size());
      db->MultiGet(ro, slices.size(), slices.data(), values.data(),
                   statuses.data());
      for (size_t i = 0; i < keys.size(); i++) {
        std::string expect_value;
        Status expect = db->Get(ro, keys[i], &expect_value);
        ASSERT_EQ(expect.ok(), statuses[i].ok()) << keys[i];
        ASSERT_EQ(expect.IsNotFound(), statuses[i].IsNotFound()) << keys[i];
        if (expect.ok()) ASSERT_EQ(expect_value, values[i]) << keys[i];
      }
    }
    db->ReleaseSnapshot(snap);
  }
}

// --- snapshots ------------------------------------------------------------

TEST(ShardedSnapshotTest, SnapshotPinsPerShardViews) {
  MemEnv env;
  Options options = MakeOptions(&env, kEngines[2]);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/sdb", 3, &db).ok());

  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "old").ok());
  }
  const Snapshot* snap = db->GetSnapshot();
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "new").ok());
  }
  ASSERT_TRUE(db->Delete(WriteOptions(), Key(0)).ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string value;
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(db->Get(at_snap, Key(i), &value).ok()) << Key(i);
    EXPECT_EQ(value, "old") << Key(i);
  }
  std::unique_ptr<Iterator> it(db->NewIterator(at_snap));
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next(), n++) {
    EXPECT_EQ(it->value().ToString(), "old");
  }
  EXPECT_EQ(n, 40);
  it.reset();
  db->ReleaseSnapshot(snap);

  ASSERT_TRUE(db->Get(ReadOptions(), Key(1), &value).ok());
  EXPECT_EQ(value, "new");
  EXPECT_TRUE(db->Get(ReadOptions(), Key(0), &value).IsNotFound());
}

// --- stats aggregation and properties -------------------------------------

TEST(ShardedStatsTest, SumsShardsAndExposesBreakdown) {
  MemEnv env;
  Options options = MakeOptions(&env, kEngines[2]);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/sdb", 4, &db).ok());
  auto* sharded = static_cast<ShardedDB*>(db.get());

  const std::string value(512, 'x');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->WaitForQuiescence().ok());

  DbStats total = db->GetStats();
  uint64_t manual_user = 0, manual_space = 0;
  for (int s = 0; s < 4; s++) {
    DbStats per = sharded->shard(s)->GetStats();
    manual_user += per.user_bytes;
    manual_space += per.space_used_bytes;
    EXPECT_GT(per.user_bytes, 0u) << "shard " << s << " got no data";
  }
  EXPECT_EQ(total.user_bytes, manual_user);
  EXPECT_EQ(total.space_used_bytes, manual_space);
  EXPECT_GT(sharded->amp_stats().user_bytes(), 0u);

  std::string prop;
  ASSERT_TRUE(db->GetProperty("iamdb.shardmap", &prop));
  EXPECT_EQ(prop, "v=1 shards=4 hash=splitmix64");
  ASSERT_TRUE(db->GetProperty("iamdb.shard-stats", &prop));
  for (int s = 0; s < 4; s++) {
    EXPECT_NE(prop.find("[shard " + std::to_string(s) + "]"),
              std::string::npos)
        << prop;
  }
  ASSERT_TRUE(db->GetProperty("iamdb.approximate-memory-usage", &prop));
  EXPECT_GT(std::stoull(prop), 0u);
  EXPECT_FALSE(db->GetProperty("iamdb.nonsense", &prop));

  EXPECT_TRUE(db->CheckInvariants(true).ok());
}

TEST(ShardedStatsTest, ShardIteratorsPartitionTheKeyspace) {
  MemEnv env;
  Options options = MakeOptions(&env, kEngines[0]);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/sdb", 4, &db).ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "v").ok());
  }
  std::map<std::string, int> seen;
  for (int s = 0; s < 4; s++) {
    std::unique_ptr<Iterator> it(db->NewShardIterator(ReadOptions(), s));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      seen[it->key().ToString()]++;
      EXPECT_EQ(ShardOf(it->key(), 4), static_cast<uint32_t>(s));
    }
    EXPECT_TRUE(it->status().ok());
  }
  EXPECT_EQ(seen.size(), 100u);  // every key in exactly one shard
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1) << key;

  std::unique_ptr<Iterator> bad(db->NewShardIterator(ReadOptions(), 4));
  EXPECT_TRUE(bad->status().IsInvalidArgument());
  bad.reset(db->NewShardIterator(ReadOptions(), -1));
  EXPECT_TRUE(bad->status().IsInvalidArgument());
}

// --- cluster-aware client against a sharded server ------------------------

class ShardedServerTest : public testing::Test {
 protected:
  static constexpr int kDbShards = 4;

  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    Options options = MakeOptions(env_.get(), kEngines[2]);
    ASSERT_TRUE(ShardedDB::Open(options, "/srv", kDbShards, &db_).ok());
    ServerOptions server_options;
    server_options.port = 0;
    server_options.num_workers = 4;
    server_ = std::make_unique<Server>(db_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    db_.reset();
  }

  std::unique_ptr<Client> MakeClient() {
    ClientOptions options;
    options.port = server_->port();
    options.connect_retries = 1;
    return std::make_unique<Client>(options);
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ShardedServerTest, ShardMapDiscovery) {
  auto client = MakeClient();
  int num_shards = 0;
  ASSERT_TRUE(client->GetShardMap(&num_shards).ok());
  EXPECT_EQ(num_shards, kDbShards);
}

TEST_F(ShardedServerTest, MultiGetShardedEdgeCases) {
  auto client = MakeClient();
  // Keys pinned to one shard of 4 (see ShardHashTest::PinnedVectors
  // tooling); the all-one-shard case must not fan out incorrectly.
  const std::vector<std::string> one_shard = {"one001", "one003", "one012",
                                              "one018", "one022"};
  for (const std::string& k : one_shard) {
    ASSERT_EQ(ShardOf(k, 4), 2u) << k;  // precondition for the case below
    ASSERT_TRUE(client->Put(k, "v-" + k).ok());
  }
  // Keys spanning every shard.
  std::vector<std::string> spanning;
  bool hit[4] = {};
  for (int i = 0; spanning.size() < 12 || !(hit[0] && hit[1] && hit[2] && hit[3]);
       i++) {
    ASSERT_LT(i, 1000);
    std::string k = Key(i);
    hit[ShardOf(k, 4)] = true;
    spanning.push_back(k);
    ASSERT_TRUE(client->Put(k, "s-" + k).ok());
  }

  std::vector<std::string> values;
  std::vector<Status> statuses;

  // Empty key set: OK, empty outputs, no network dependency.
  ASSERT_TRUE(client->MultiGetSharded({}, &values, &statuses).ok());
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());

  // All keys on one shard.
  ASSERT_TRUE(client->MultiGetSharded(one_shard, &values, &statuses).ok());
  ASSERT_EQ(values.size(), one_shard.size());
  for (size_t i = 0; i < one_shard.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << one_shard[i];
    EXPECT_EQ(values[i], "v-" + one_shard[i]);
  }

  // Keys spanning every shard, with a missing key mixed in; results must
  // come back in input order.
  std::vector<std::string> mixed = spanning;
  mixed.insert(mixed.begin() + 3, "absent-key");
  ASSERT_TRUE(client->MultiGetSharded(mixed, &values, &statuses).ok());
  ASSERT_EQ(values.size(), mixed.size());
  for (size_t i = 0; i < mixed.size(); i++) {
    if (mixed[i] == "absent-key") {
      EXPECT_TRUE(statuses[i].IsNotFound());
    } else {
      ASSERT_TRUE(statuses[i].ok()) << mixed[i];
      EXPECT_EQ(values[i], "s-" + mixed[i]);
    }
  }
}

TEST_F(ShardedServerTest, ScanShardedMergesAndBounds) {
  auto client = MakeClient();
  std::vector<std::string> keys;
  for (int i = 0; i < 60; i++) {
    keys.push_back(Key(i));
    ASSERT_TRUE(client->Put(keys.back(), "v" + std::to_string(i)).ok());
  }

  // Full range: globally sorted despite per-shard storage.
  std::vector<wire::KeyValue> entries;
  bool truncated = true;
  ASSERT_TRUE(client->ScanSharded("", "", 0, &entries, &truncated).ok());
  ASSERT_EQ(entries.size(), keys.size());
  EXPECT_FALSE(truncated);
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(entries[i].first, keys[i]);
  }

  // Bounded range.
  ASSERT_TRUE(
      client->ScanSharded(Key(10), Key(20), 0, &entries, &truncated).ok());
  ASSERT_EQ(entries.size(), 10u);
  EXPECT_EQ(entries.front().first, Key(10));
  EXPECT_EQ(entries.back().first, Key(19));

  // Bounds so narrow that most shards contribute nothing.
  ASSERT_TRUE(
      client->ScanSharded(Key(7), Key(8), 0, &entries, &truncated).ok());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, Key(7));
  EXPECT_FALSE(truncated);

  // Empty range.
  ASSERT_TRUE(
      client->ScanSharded("zz", "", 0, &entries, &truncated).ok());
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(truncated);

  // Client-side limit: a correct global prefix, flagged truncated.
  ASSERT_TRUE(client->ScanSharded("", "", 25, &entries, &truncated).ok());
  ASSERT_EQ(entries.size(), 25u);
  EXPECT_TRUE(truncated);
  for (size_t i = 0; i < entries.size(); i++) {
    EXPECT_EQ(entries[i].first, keys[i]);
  }

  // The server-side merged path (no shard field) returns the same bytes.
  std::vector<wire::KeyValue> merged;
  ASSERT_TRUE(client->Scan("", "", 0, &merged, &truncated).ok());
  ASSERT_TRUE(client->ScanSharded("", "", 0, &entries, &truncated).ok());
  EXPECT_EQ(merged, entries);
}

TEST_F(ShardedServerTest, ShardScopedScanValidation) {
  auto client = MakeClient();
  ASSERT_TRUE(client->Put("k", "v").ok());

  wire::ScanRequest req;
  req.shard = kDbShards;  // out of range
  uint64_t id = client->SubmitScan(req);
  ASSERT_NE(id, 0u);
  wire::ScanResponse resp;
  Status s = client->WaitScan(id, &resp);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // A valid shard-scoped scan returns only that shard's keys.
  req.shard = static_cast<int32_t>(ShardOf(Slice("k"), kDbShards));
  id = client->SubmitScan(req);
  ASSERT_NE(id, 0u);
  ASSERT_TRUE(client->WaitScan(id, &resp).ok());
  ASSERT_EQ(resp.entries.size(), 1u);
  EXPECT_EQ(resp.entries[0].first, "k");
}

TEST_F(ShardedServerTest, ShardStatsOverTheWire) {
  auto client = MakeClient();
  ASSERT_TRUE(client->Put("k", "v").ok());
  std::string text;
  ASSERT_TRUE(client->GetProperty("iamdb.shard-stats", &text).ok());
  EXPECT_NE(text.find("[shard 0]"), std::string::npos) << text;
  DbStats stats;
  ASSERT_TRUE(client->GetStats(&stats).ok());
  EXPECT_GT(stats.user_bytes, 0u);
}

}  // namespace
}  // namespace iamdb
