// Torture tests: randomized operation storms interleaved with reopen
// cycles, torn WALs, snapshot pinning and structural validation — one
// continuous model-checked history per engine configuration.
#include <gtest/gtest.h>

#include <map>

#include "core/db.h"
#include "core/filename.h"
#include "env/mem_env.h"
#include "test_seed.h"
#include "util/random.h"

namespace iamdb {
namespace {

struct StressParam {
  EngineType engine;
  AmtPolicy policy;
  int threads;
  const char* name;
};

class StressTest : public testing::TestWithParam<StressParam> {
 protected:
  Options MakeOptions() {
    Options options;
    options.env = &env_;
    options.engine = GetParam().engine;
    options.amt.policy = GetParam().policy;
    options.background_threads = GetParam().threads;
    options.node_capacity = 16 << 10;  // tiny: maximal structural churn
    options.table.block_size = 512;
    options.amt.fanout = 3;            // minimum sensible fan-out
    options.leveled.max_bytes_level1 = 48 << 10;
    options.leveled.target_file_size = 8 << 10;
    options.block_cache_capacity = 256 << 10;
    // CI's TSAN compression cell sets IAMDB_TEST_COMPRESSION so concurrent
    // readers hammer the decompress path and the compressed cache tier.
    options.table.compression = test::TestCompression();
    if (options.table.compression != CompressionType::kNone) {
      options.compressed_cache_capacity = 256 << 10;
    }
    return options;
  }

  std::string Key(uint64_t i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08llu",
             static_cast<unsigned long long>(i));
    return buf;
  }

  MemEnv env_;
};

TEST_P(StressTest, OperationStormWithReopens) {
  const uint64_t seed = test::TestSeed(GetParam().threads * 7 + 1);
  SCOPED_TRACE(test::SeedTrace(seed));
  Random64 rnd(seed);
  std::map<std::string, std::string> model;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());

  const int kEpochs = 6;
  const int kOpsPerEpoch = 6000;
  const uint64_t kKeySpace = 3000;

  for (int epoch = 0; epoch < kEpochs; epoch++) {
    for (int i = 0; i < kOpsPerEpoch; i++) {
      uint64_t k = rnd.Next() % kKeySpace;
      std::string key = Key(k);
      uint32_t op = static_cast<uint32_t>(rnd.Next() % 100);
      if (op < 55) {
        std::string value(1 + rnd.Next() % 300,
                          static_cast<char>('a' + k % 26));
        ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
        model[key] = value;
      } else if (op < 75) {
        ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
        model.erase(key);
      } else if (op < 95) {
        std::string value;
        Status s = db->Get(ReadOptions(), key, &value);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_TRUE(s.IsNotFound()) << key;
        } else {
          ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
          ASSERT_EQ(it->second, value) << key;
        }
      } else {
        // Short scan cross-checked against the model.
        std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
        iter->Seek(key);
        auto it = model.lower_bound(key);
        for (int step = 0; step < 8 && it != model.end();
             ++step, ++it, iter->Next()) {
          ASSERT_TRUE(iter->Valid()) << "scan from " << key;
          ASSERT_EQ(it->first, iter->key().ToString());
          ASSERT_EQ(it->second, iter->value().ToString());
        }
      }
    }

    // Epoch boundary: structural checks + reopen (every other epoch a
    // torn-WAL crash is simulated by chopping the newest log's tail).
    // FlushAll first so the model is entirely in tables and the chopped
    // log tail is empty — losing it must not lose committed model state.
    ASSERT_TRUE(db->FlushAll().ok());
    ASSERT_TRUE(db->CheckInvariants(true).ok()) << "epoch " << epoch;
    db.reset();

    if (epoch % 2 == 1) {
      std::vector<std::string> children;
      ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
      uint64_t newest_log = 0;
      for (const auto& child : children) {
        uint64_t number;
        FileType type;
        if (ParseFileName(child, &number, &type) &&
            type == FileType::kLogFile) {
          newest_log = std::max(newest_log, number);
        }
      }
      if (newest_log != 0) {
        std::string name = LogFileName("/db", newest_log);
        uint64_t size = 0;
        env_.GetFileSize(name, &size);
        if (size > 4) {
          ASSERT_TRUE(env_.Truncate(name, size - 3).ok());
        }
        // The quiesced model is durable in tables; at most the empty
        // current-log tail was torn, so the model stays exact.
      }
    }
    ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  }

  // Final exhaustive comparison.
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  std::map<std::string, std::string> dump;
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    dump[iter->key().ToString()] = iter->value().ToString();
  }
  ASSERT_TRUE(iter->status().ok());
  EXPECT_EQ(model, dump);
}

TEST_P(StressTest, SnapshotPinningUnderChurn) {
  const uint64_t seed = test::TestSeed(99);
  SCOPED_TRACE(test::SeedTrace(seed));
  Random64 rnd(seed);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db2", &db).ok());

  // Several epochs, each freezing a snapshot + model copy, then churning.
  std::vector<const Snapshot*> snaps;
  std::vector<std::map<std::string, std::string>> snap_models;
  std::map<std::string, std::string> model;

  for (int epoch = 0; epoch < 4; epoch++) {
    for (int i = 0; i < 4000; i++) {
      uint64_t k = rnd.Next() % 800;
      std::string key = Key(k);
      if (rnd.Next() % 4 == 0) {
        ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
        model.erase(key);
      } else {
        std::string value = "e" + std::to_string(epoch) + "-" +
                            std::to_string(i);
        ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
        model[key] = value;
      }
    }
    snaps.push_back(db->GetSnapshot());
    snap_models.push_back(model);
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());

  // Every snapshot still sees exactly its frozen state, despite all the
  // compaction that has happened since.
  for (size_t s = 0; s < snaps.size(); s++) {
    ReadOptions at;
    at.snapshot = snaps[s];
    for (uint64_t k = 0; k < 800; k += 13) {
      std::string key = Key(k);
      std::string value;
      Status st = db->Get(at, key, &value);
      auto it = snap_models[s].find(key);
      if (it == snap_models[s].end()) {
        ASSERT_TRUE(st.IsNotFound()) << "snap " << s << " " << key;
      } else {
        ASSERT_TRUE(st.ok()) << "snap " << s << " " << key;
        ASSERT_EQ(it->second, value) << "snap " << s << " " << key;
      }
    }
    // Scans through the snapshot agree too.
    std::unique_ptr<Iterator> iter(db->NewIterator(at));
    size_t seen = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) seen++;
    ASSERT_EQ(snap_models[s].size(), seen) << "snap " << s;
  }
  for (const Snapshot* snap : snaps) db->ReleaseSnapshot(snap);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, StressTest,
    testing::Values(
        StressParam{EngineType::kLeveled, AmtPolicy::kLsa, 1, "Leveled1t"},
        StressParam{EngineType::kLeveled, AmtPolicy::kLsa, 3, "Leveled3t"},
        StressParam{EngineType::kAmt, AmtPolicy::kLsa, 1, "Lsa1t"},
        StressParam{EngineType::kAmt, AmtPolicy::kLsa, 3, "Lsa3t"},
        StressParam{EngineType::kAmt, AmtPolicy::kIam, 1, "Iam1t"},
        StressParam{EngineType::kAmt, AmtPolicy::kIam, 3, "Iam3t"}),
    [](const testing::TestParamInfo<StressParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace iamdb
