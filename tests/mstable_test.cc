// MSTable tests: build/read round trips, appended sequences, metadata
// clustering, crash-tolerance of appends (stale meta_end still readable),
// point reads across sequences with MVCC, merged iteration.
#include <gtest/gtest.h>

#include <map>

#include "core/dbformat.h"
#include "env/counting_env.h"
#include "env/mem_env.h"
#include "table/cache.h"
#include "table/compressor.h"
#include "table/merging_iterator.h"
#include "table/mstable.h"
#include "util/random.h"

namespace iamdb {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq,
                 ValueType t = kTypeValue) {
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(user_key, seq, t));
  return r;
}

class MSTableTest : public testing::Test {
 protected:
  void SetUp() override {
    cache_ = std::make_unique<LruCache>(8 << 20);
    options_.block_cache = cache_.get();
    options_.block_size = 512;  // small blocks exercise the index
  }

  // Creates a new single-sequence table from sorted (ikey, value) pairs.
  MSTableBuildResult BuildNew(
      const std::string& fname,
      const std::vector<std::pair<std::string, std::string>>& entries) {
    MSTableWriter writer(&env_, options_, fname);
    EXPECT_TRUE(writer.Open().ok());
    for (const auto& [k, v] : entries) {
      EXPECT_TRUE(writer.Add(k, v).ok());
    }
    MSTableBuildResult result;
    EXPECT_TRUE(writer.Finish(false, &result).ok());
    return result;
  }

  MSTableBuildResult Append(
      const std::string& fname, const MSTableReader& existing,
      const std::vector<std::pair<std::string, std::string>>& entries) {
    MSTableAppender appender(&env_, options_, fname, existing);
    EXPECT_TRUE(appender.Open().ok());
    for (const auto& [k, v] : entries) {
      EXPECT_TRUE(appender.Add(k, v).ok());
    }
    MSTableBuildResult result;
    EXPECT_TRUE(appender.Finish(false, &result).ok());
    return result;
  }

  std::shared_ptr<MSTableReader> OpenReader(const std::string& fname,
                                            uint64_t meta_end,
                                            uint64_t file_number = 1) {
    std::shared_ptr<MSTableReader> reader;
    Status s = MSTableReader::Open(&env_, options_, &cmp_, fname, file_number,
                                   meta_end, &reader);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return reader;
  }

  // Point-read helper.
  std::string Get(const MSTableReader& reader, const std::string& key,
                  SequenceNumber snap, MSTableReader::GetState* state) {
    std::string value;
    std::string ikey = IKey(key, snap, kValueTypeForSeek);
    Status s = reader.Get(ReadOptions(), ikey, &value, state);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return value;
  }

  MemEnv env_;
  InternalKeyComparator cmp_;
  std::unique_ptr<LruCache> cache_;
  TableOptions options_;
};

TEST_F(MSTableTest, BuildAndReadSingleSequence) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%05d", i);
    entries.emplace_back(IKey(buf, 10), "value" + std::to_string(i));
  }
  auto result = BuildNew("/t1", entries);
  EXPECT_EQ(1u, result.seq_count);
  EXPECT_EQ(1000u, result.num_entries);
  EXPECT_EQ(entries.front().first, result.smallest);
  EXPECT_EQ(entries.back().first, result.largest);

  auto reader = OpenReader("/t1", result.meta_end);
  ASSERT_NE(nullptr, reader);
  EXPECT_EQ(1, reader->seq_count());
  EXPECT_EQ(1000u, reader->total_entries());

  MSTableReader::GetState state;
  EXPECT_EQ("value42", Get(*reader, "key00042", 100, &state));
  EXPECT_EQ(MSTableReader::GetState::kFound, state);

  Get(*reader, "key99999", 100, &state);
  EXPECT_EQ(MSTableReader::GetState::kNotFound, state);
}

TEST_F(MSTableTest, IteratorFullScan) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 500; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%06d", i * 3);
    entries.emplace_back(IKey(buf, 7), std::string(i % 50, 'v'));
  }
  auto result = BuildNew("/t2", entries);
  auto reader = OpenReader("/t2", result.meta_end);

  std::unique_ptr<Iterator> iter(reader->NewIterator(ReadOptions()));
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(entries[i].first, iter->key().ToString());
    EXPECT_EQ(entries[i].second, iter->value().ToString());
  }
  EXPECT_EQ(entries.size(), i);
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(MSTableTest, AppendAddsSequenceNewestWins) {
  // Old sequence: keys 0..99 at seq 10.
  std::vector<std::pair<std::string, std::string>> old_entries;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    old_entries.emplace_back(IKey(buf, 10), "old");
  }
  auto r1 = BuildNew("/t3", old_entries);
  auto reader1 = OpenReader("/t3", r1.meta_end);

  // Appended sequence: overlapping keys 50..149 at seq 20.
  std::vector<std::pair<std::string, std::string>> new_entries;
  for (int i = 50; i < 150; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    new_entries.emplace_back(IKey(buf, 20), "new");
  }
  auto r2 = Append("/t3", *reader1, new_entries);
  EXPECT_EQ(2u, r2.seq_count);
  EXPECT_EQ(200u, r2.num_entries);

  // Reader at the NEW meta_end sees both sequences; file number bumps the
  // cache generation implicitly since block offsets are unique.
  auto reader2 = OpenReader("/t3", r2.meta_end, 2);
  EXPECT_EQ(2, reader2->seq_count());

  MSTableReader::GetState state;
  EXPECT_EQ("new", Get(*reader2, "key075", 100, &state));  // overlap: newest
  EXPECT_EQ("old", Get(*reader2, "key025", 100, &state));  // old only
  EXPECT_EQ("new", Get(*reader2, "key125", 100, &state));  // new only

  // Snapshot below the append still sees the old value.
  EXPECT_EQ("old", Get(*reader2, "key075", 15, &state));

  // The OLD reader (stale meta_end) still works: append is crash-safe.
  auto reader_old = OpenReader("/t3", r1.meta_end, 3);
  EXPECT_EQ(1, reader_old->seq_count());
  EXPECT_EQ("old", Get(*reader_old, "key075", 100, &state));
  Get(*reader_old, "key125", 100, &state);
  EXPECT_EQ(MSTableReader::GetState::kNotFound, state);
}

TEST_F(MSTableTest, MultipleAppendsAccumulate) {
  auto r = BuildNew("/t4", {{IKey("a", 1), "v1"}});
  for (int gen = 2; gen <= 5; gen++) {
    auto reader = OpenReader("/t4", r.meta_end, gen);
    r = Append("/t4", *reader,
               {{IKey("a", static_cast<SequenceNumber>(gen)),
                 "v" + std::to_string(gen)}});
    EXPECT_EQ(static_cast<uint32_t>(gen), r.seq_count);
  }
  auto reader = OpenReader("/t4", r.meta_end, 100);
  EXPECT_EQ(5, reader->seq_count());
  MSTableReader::GetState state;
  EXPECT_EQ("v5", Get(*reader, "a", 100, &state));
  EXPECT_EQ("v3", Get(*reader, "a", 3, &state));
  EXPECT_EQ("v1", Get(*reader, "a", 1, &state));
}

TEST_F(MSTableTest, DeletionTombstoneVisible) {
  auto r1 = BuildNew("/t5", {{IKey("k", 5), "alive"}});
  auto reader1 = OpenReader("/t5", r1.meta_end);
  auto r2 = Append("/t5", *reader1, {{IKey("k", 9, kTypeDeletion), ""}});
  auto reader2 = OpenReader("/t5", r2.meta_end, 2);

  MSTableReader::GetState state;
  Get(*reader2, "k", 100, &state);
  EXPECT_EQ(MSTableReader::GetState::kDeleted, state);
  EXPECT_EQ("alive", Get(*reader2, "k", 7, &state));
  EXPECT_EQ(MSTableReader::GetState::kFound, state);
}

TEST_F(MSTableTest, MergedIteratorAcrossSequences) {
  std::vector<std::pair<std::string, std::string>> s1, s2;
  for (int i = 0; i < 100; i += 2) {  // evens at seq 10
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    s1.emplace_back(IKey(buf, 10), "even");
  }
  auto r1 = BuildNew("/t6", s1);
  auto reader1 = OpenReader("/t6", r1.meta_end);
  for (int i = 1; i < 100; i += 2) {  // odds at seq 20
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    s2.emplace_back(IKey(buf, 20), "odd");
  }
  auto r2 = Append("/t6", *reader1, s2);
  auto reader2 = OpenReader("/t6", r2.meta_end, 2);

  std::unique_ptr<Iterator> iter(reader2->NewIterator(ReadOptions()));
  int count = 0;
  std::string prev;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    std::string cur = iter->key().ToString();
    if (!prev.empty()) {
      EXPECT_LT(cmp_.Compare(prev, cur), 0);
    }
    prev = cur;
  }
  EXPECT_EQ(100, count);
}

TEST_F(MSTableTest, BackwardScanAcrossSequences) {
  // Two interleaved sequences; a reverse scan must weave them in exact
  // descending order (exercises two-level + merging Prev paths).
  std::vector<std::pair<std::string, std::string>> s1, s2;
  for (int i = 0; i < 100; i += 2) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    s1.emplace_back(IKey(buf, 10), "even");
  }
  auto r1 = BuildNew("/tb", s1);
  auto reader1 = OpenReader("/tb", r1.meta_end);
  for (int i = 1; i < 100; i += 2) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    s2.emplace_back(IKey(buf, 20), "odd");
  }
  auto r2 = Append("/tb", *reader1, s2);
  auto reader2 = OpenReader("/tb", r2.meta_end, 2);

  std::unique_ptr<Iterator> iter(reader2->NewIterator(ReadOptions()));
  int expect = 99;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev(), expect--) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", expect);
    ASSERT_EQ(buf, ExtractUserKey(iter->key()).ToString());
    ASSERT_EQ(expect % 2 == 0 ? "even" : "odd", iter->value().ToString());
  }
  EXPECT_EQ(-1, expect);

  // Mid-stream direction flip.
  iter->Seek(IKey("key050", kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key049", ExtractUserKey(iter->key()).ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key050", ExtractUserKey(iter->key()).ToString());
}

TEST_F(MSTableTest, AppendsLeaveDeadMetadataAccountedInFootprint) {
  // Each append supersedes the previous clustered metadata region; the
  // dead zones stay inside the file until a merge rewrites the node.
  auto r = BuildNew("/tc", {{IKey("a", 1), std::string(2000, 'v')}});
  uint64_t first_end = r.meta_end;
  uint64_t data = r.data_bytes;
  for (int gen = 2; gen <= 6; gen++) {
    auto reader = OpenReader("/tc", r.meta_end, gen);
    r = Append("/tc", *reader,
               {{IKey("b" + std::to_string(gen), gen),
                 std::string(2000, 'v')}});
    data += 2000;
  }
  // Footprint (meta_end) grows faster than live data: dead metadata.
  uint64_t file_size;
  ASSERT_TRUE(env_.GetFileSize("/tc", &file_size).ok());
  EXPECT_EQ(file_size, r.meta_end);
  EXPECT_GT(r.meta_end - first_end, (r.data_bytes - 2000) + 4 * 64)
      << "expected dead metadata regions between appends";
  EXPECT_GT(r.data_bytes, 5u * 2000u);
}

TEST_F(MSTableTest, BloomPreventsDataBlockReads) {
  IoStats stats;
  CountingEnv counting_env(&env_, &stats);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%05d", i);
    entries.emplace_back(IKey(buf, 1), "v");
  }
  // Build directly on counting env.
  MSTableWriter writer(&counting_env, options_, "/t7");
  ASSERT_TRUE(writer.Open().ok());
  for (const auto& [k, v] : entries) ASSERT_TRUE(writer.Add(k, v).ok());
  MSTableBuildResult result;
  ASSERT_TRUE(writer.Finish(false, &result).ok());

  // Use a reader without block cache so reads hit the "device".
  TableOptions no_cache = options_;
  no_cache.block_cache = nullptr;
  std::shared_ptr<MSTableReader> reader;
  ASSERT_TRUE(MSTableReader::Open(&counting_env, no_cache, &cmp_, "/t7", 1,
                                  result.meta_end, &reader)
                  .ok());

  IoStatsSnapshot before = stats.Snapshot();
  // 200 misses: bloom should reject nearly all without any disk read.
  MSTableReader::GetState state;
  std::string value;
  int fp_reads = 0;
  for (int i = 0; i < 200; i++) {
    IoStatsSnapshot pre = stats.Snapshot();
    std::string ikey = IKey("absent" + std::to_string(i), 100);
    ASSERT_TRUE(reader->Get(ReadOptions(), ikey, &value, &state).ok());
    EXPECT_EQ(MSTableReader::GetState::kNotFound, state);
    if ((stats.Snapshot() - pre).read_ops > 0) fp_reads++;
  }
  EXPECT_LE(fp_reads, 4);  // ~0.2% fp rate, wide margin

  // A real hit costs exactly one data-block read (metadata is in memory).
  IoStatsSnapshot pre = stats.Snapshot();
  std::string ikey = IKey("key00500", 100);
  ASSERT_TRUE(reader->Get(ReadOptions(), ikey, &value, &state).ok());
  EXPECT_EQ(MSTableReader::GetState::kFound, state);
  EXPECT_EQ(1u, (stats.Snapshot() - pre).read_ops);
  (void)before;
}

TEST_F(MSTableTest, MetadataIsOneContiguousReadOnOpen) {
  IoStats stats;
  CountingEnv counting_env(&env_, &stats);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 2000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%05d", i);
    entries.emplace_back(IKey(buf, 1), std::string(100, 'v'));
  }
  auto result = BuildNew("/t8", entries);

  IoStatsSnapshot before = stats.Snapshot();
  std::shared_ptr<MSTableReader> reader;
  ASSERT_TRUE(MSTableReader::Open(&counting_env, options_, &cmp_, "/t8", 1,
                                  result.meta_end, &reader)
                  .ok());
  IoStatsSnapshot delta = stats.Snapshot() - before;
  // One trailer read + one region read.
  EXPECT_EQ(2u, delta.read_ops);
}

TEST_F(MSTableTest, CorruptTrailerRejected) {
  auto result = BuildNew("/t9", {{IKey("a", 1), "v"}});
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/t9", &contents).ok());
  contents[contents.size() - 6] ^= 0xff;  // inside the magic
  ASSERT_TRUE(WriteStringToFile(&env_, contents, "/t9", false).ok());
  std::shared_ptr<MSTableReader> reader;
  Status s = MSTableReader::Open(&env_, options_, &cmp_, "/t9", 1,
                                 result.meta_end, &reader);
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(MSTableTest, CorruptDataBlockDetectedWithChecksums) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    entries.emplace_back(IKey(buf, 1), std::string(64, 'v'));
  }
  auto result = BuildNew("/t10", entries);

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/t10", &contents).ok());
  contents[10] ^= 0x1;  // flip a bit in the first data block
  ASSERT_TRUE(WriteStringToFile(&env_, contents, "/t10", false).ok());

  TableOptions strict = options_;
  strict.verify_checksums = true;
  strict.block_cache = nullptr;
  std::shared_ptr<MSTableReader> reader;
  ASSERT_TRUE(MSTableReader::Open(&env_, strict, &cmp_, "/t10", 1,
                                  result.meta_end, &reader)
                  .ok());
  MSTableReader::GetState state;
  std::string value;
  std::string ikey = IKey("key001", 100);
  Status s = reader->Get(ReadOptions(), ikey, &value, &state);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(MSTableTest, RandomizedMultiSequenceAgainstModel) {
  Random rnd(77);
  std::map<std::string, std::pair<SequenceNumber, std::string>> model;
  SequenceNumber seq = 1;

  // Build 4 sequences of random keys, each strictly newer.
  uint64_t meta_end = 0;
  for (int s = 0; s < 4; s++) {
    std::map<std::string, std::string> batch;
    for (int i = 0; i < 300; i++) {
      char buf[16];
      snprintf(buf, sizeof(buf), "key%04d", rnd.Uniform(1000));
      batch[buf] = "s" + std::to_string(s) + "i" + std::to_string(i);
    }
    std::vector<std::pair<std::string, std::string>> entries;
    for (const auto& [k, v] : batch) {
      entries.emplace_back(IKey(k, seq), v);
      model[k] = {seq, v};
    }
    seq++;
    if (s == 0) {
      meta_end = BuildNew("/t11", entries).meta_end;
    } else {
      auto reader = OpenReader("/t11", meta_end, s);
      meta_end = Append("/t11", *reader, entries).meta_end;
    }
  }

  auto reader = OpenReader("/t11", meta_end, 50);
  EXPECT_EQ(4, reader->seq_count());
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    MSTableReader::GetState state;
    std::string value = Get(*reader, buf, 100, &state);
    auto it = model.find(buf);
    if (it == model.end()) {
      EXPECT_EQ(MSTableReader::GetState::kNotFound, state) << buf;
    } else {
      ASSERT_EQ(MSTableReader::GetState::kFound, state) << buf;
      EXPECT_EQ(it->second.second, value) << buf;
    }
  }

  // Merged scan equals the model.
  std::unique_ptr<Iterator> iter(reader->NewIterator(ReadOptions()));
  std::map<std::string, std::string> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    std::string uk = parsed.user_key.ToString();
    if (seen.count(uk) == 0) {  // first (newest) version wins
      seen[uk] = iter->value().ToString();
    }
  }
  ASSERT_EQ(model.size(), seen.size());
  for (const auto& [k, sv] : model) {
    EXPECT_EQ(sv.second, seen[k]) << k;
  }
}

// ---------------------------------------------------------------------------
// Per-block compression (format v2).

// YCSB-shaped entries: fixed-size values of 8-byte letter runs, the pattern
// the columnar codec targets.
std::vector<std::pair<std::string, std::string>> FixedRecordEntries(int n) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < n; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "user%06d", i);
    std::string value;
    for (int f = 0; f < 10; f++) {
      value.append(8, static_cast<char>('a' + (i + f) % 26));
    }
    entries.emplace_back(IKey(buf, 10), value);
  }
  return entries;
}

class MSTableCompressionTest : public MSTableTest,
                               public testing::WithParamInterface<
                                   CompressionType> {};

TEST_P(MSTableCompressionTest, CompressedBuildReadsBackIdentically) {
  auto entries = FixedRecordEntries(1000);
  auto raw = BuildNew("/raw", entries);

  options_.compression = GetParam();
  auto compressed = BuildNew("/comp", entries);

  // Physical footprint shrinks; logical accounting (data_bytes drives node
  // splits and merge triggers) is codec-invariant so tree shape — and the
  // tree digest — cannot depend on the codec.
  EXPECT_LT(compressed.meta_end, raw.meta_end);
  EXPECT_EQ(compressed.data_bytes, raw.data_bytes);

  auto reader = OpenReader("/comp", compressed.meta_end);
  ASSERT_NE(nullptr, reader);
  MSTableReader::GetState state;
  EXPECT_EQ(entries[42].second, Get(*reader, "user000042", 100, &state));
  EXPECT_EQ(MSTableReader::GetState::kFound, state);

  std::unique_ptr<Iterator> iter(reader->NewIterator(ReadOptions()));
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(entries[i].first, iter->key().ToString());
    EXPECT_EQ(entries[i].second, iter->value().ToString());
  }
  EXPECT_EQ(entries.size(), i);
  EXPECT_TRUE(iter->status().ok());
}

TEST_P(MSTableCompressionTest, CompressedAppendRoundtrip) {
  options_.compression = GetParam();
  auto entries1 = FixedRecordEntries(400);
  auto r1 = BuildNew("/ta", entries1);
  auto reader1 = OpenReader("/ta", r1.meta_end);
  ASSERT_NE(nullptr, reader1);

  std::vector<std::pair<std::string, std::string>> entries2;
  for (int i = 200; i < 600; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "user%06d", i);
    entries2.emplace_back(IKey(buf, 20), std::string(80, 'z'));
  }
  auto r2 = Append("/ta", *reader1, entries2);
  EXPECT_EQ(2u, r2.seq_count);

  auto reader2 = OpenReader("/ta", r2.meta_end);
  ASSERT_NE(nullptr, reader2);
  MSTableReader::GetState state;
  // Overlap region: the newer sequence (seq 20) wins.
  EXPECT_EQ(std::string(80, 'z'), Get(*reader2, "user000300", 100, &state));
  // Old-only and new-only keys both resolve.
  EXPECT_EQ(entries1[10].second, Get(*reader2, "user000010", 100, &state));
  EXPECT_EQ(std::string(80, 'z'), Get(*reader2, "user000599", 100, &state));
}

TEST_P(MSTableCompressionTest, CacheChargesUncompressedResidentSize) {
  options_.compression = GetParam();
  auto entries = FixedRecordEntries(2000);
  auto result = BuildNew("/tcc", entries);
  uint64_t file_size = 0;
  ASSERT_TRUE(env_.GetFileSize("/tcc", &file_size).ok());

  // Fresh cache; scan everything so every data block lands in it.
  cache_ = std::make_unique<LruCache>(64 << 20);
  options_.block_cache = cache_.get();
  auto reader = OpenReader("/tcc", result.meta_end);
  ASSERT_NE(nullptr, reader);
  std::unique_ptr<Iterator> iter(reader->NewIterator(ReadOptions()));
  size_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
  ASSERT_EQ(entries.size(), n);

  // Blocks are charged at their *uncompressed* resident size: cached bytes
  // must track the logical data size, not the (much smaller) on-disk file.
  EXPECT_GT(cache_->usage(), file_size);
  EXPECT_LE(cache_->usage(), result.data_bytes);
}

TEST_P(MSTableCompressionTest, CompressedCacheTierServesRereads) {
  IoStats stats;
  CountingEnv counting_env(&env_, &stats);
  options_.compression = GetParam();
  LruCache compressed_cache(8 << 20);
  options_.compressed_block_cache = &compressed_cache;
  CompressionStats cstats;
  options_.compression_stats = &cstats;

  auto entries = FixedRecordEntries(1000);
  MSTableWriter writer(&counting_env, options_, "/tct");
  ASSERT_TRUE(writer.Open().ok());
  for (const auto& [k, v] : entries) ASSERT_TRUE(writer.Add(k, v).ok());
  MSTableBuildResult result;
  ASSERT_TRUE(writer.Finish(false, &result).ok());
  ASSERT_GT(cstats.stored_bytes.load(), 0u);
  EXPECT_LT(cstats.stored_bytes.load(), cstats.input_bytes.load());

  // First pass fills both tiers.
  std::shared_ptr<MSTableReader> reader;
  ASSERT_TRUE(MSTableReader::Open(&counting_env, options_, &cmp_, "/tct", 1,
                                  result.meta_end, &reader)
                  .ok());
  std::unique_ptr<Iterator> iter(reader->NewIterator(ReadOptions()));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
  }
  EXPECT_GT(compressed_cache.usage(), 0u);

  // Drop the uncompressed tier; a re-read must be fed entirely from the
  // compressed tier — zero device reads, only decompression work.
  cache_ = std::make_unique<LruCache>(64 << 20);
  options_.block_cache = cache_.get();
  std::shared_ptr<MSTableReader> reader2;
  ASSERT_TRUE(MSTableReader::Open(&counting_env, options_, &cmp_, "/tct", 1,
                                  result.meta_end, &reader2)
                  .ok());
  const uint64_t decompressed_before = cstats.decompressed_blocks.load();
  IoStatsSnapshot before = stats.Snapshot();
  std::unique_ptr<Iterator> iter2(reader2->NewIterator(ReadOptions()));
  size_t n = 0;
  for (iter2->SeekToFirst(); iter2->Valid(); iter2->Next()) n++;
  ASSERT_EQ(entries.size(), n);
  EXPECT_EQ(0u, (stats.Snapshot() - before).read_ops);
  EXPECT_GT(cstats.decompressed_blocks.load(), decompressed_before);
}

TEST_P(MSTableCompressionTest, CorruptCompressedBlockSurfacesCorruption) {
  options_.compression = GetParam();
  auto result = BuildNew("/tcx", FixedRecordEntries(500));

  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env_, "/tcx", &contents).ok());
  // Flip a byte inside the first data block's compressed payload: the CRC
  // (which covers payload + type tag) must reject it before the codec runs.
  contents[10] ^= 0x10;
  ASSERT_TRUE(WriteStringToFile(&env_, contents, "/tcx", false).ok());

  TableOptions no_cache = options_;
  no_cache.block_cache = nullptr;  // force the device read
  std::shared_ptr<MSTableReader> reader;
  ASSERT_TRUE(MSTableReader::Open(&env_, no_cache, &cmp_, "/tcx", 1,
                                  result.meta_end, &reader)
                  .ok());
  std::unique_ptr<Iterator> iter(reader->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  // Either invalid immediately or an error status; never garbage entries
  // from a torn block.
  EXPECT_TRUE(!iter->Valid() || !iter->status().ok());
  EXPECT_TRUE(iter->status().IsCorruption()) << iter->status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Codecs, MSTableCompressionTest,
                         testing::Values(CompressionType::kColumnar,
                                         CompressionType::kLz),
                         [](const testing::TestParamInfo<CompressionType>& i) {
                           return std::string(CompressionTypeName(i.param));
                         });

}  // namespace
}  // namespace iamdb
