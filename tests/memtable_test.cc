// MemTable + WriteBatch + internal key format tests, including MVCC
// visibility via sequence numbers.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "core/dbformat.h"
#include "memtable/memtable.h"
#include "memtable/skiplist.h"
#include "memtable/write_batch.h"
#include "util/arena.h"
#include "util/random.h"

namespace iamdb {
namespace {

TEST(DbFormatTest, InternalKeyEncodeDecode) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey("foo", 42, kTypeValue));
  ParsedInternalKey decoded;
  ASSERT_TRUE(ParseInternalKey(encoded, &decoded));
  EXPECT_EQ("foo", decoded.user_key.ToString());
  EXPECT_EQ(42u, decoded.sequence);
  EXPECT_EQ(kTypeValue, decoded.type);
}

TEST(DbFormatTest, ParseRejectsGarbage) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
  std::string bad;
  AppendInternalKey(&bad, ParsedInternalKey("k", 1, kTypeValue));
  bad[bad.size() - 8] = 0x7f;  // the type byte is the low byte of the tag
  EXPECT_FALSE(ParseInternalKey(bad, &parsed));
}

TEST(DbFormatTest, ComparatorOrdersUserKeyThenSeqDesc) {
  InternalKeyComparator cmp;
  auto ik = [](const char* k, SequenceNumber s, ValueType t) {
    std::string r;
    AppendInternalKey(&r, ParsedInternalKey(k, s, t));
    return r;
  };
  // Different user keys: bytewise order.
  EXPECT_LT(cmp.Compare(ik("a", 1, kTypeValue), ik("b", 100, kTypeValue)), 0);
  // Same user key: higher sequence first.
  EXPECT_LT(cmp.Compare(ik("a", 10, kTypeValue), ik("a", 5, kTypeValue)), 0);
  // Same user key + sequence: value before deletion.
  EXPECT_LT(cmp.Compare(ik("a", 5, kTypeValue), ik("a", 5, kTypeDeletion)), 0);
}

TEST(DbFormatTest, FindShortestSeparatorStaysBetween) {
  InternalKeyComparator cmp;
  auto ik = [](const std::string& k) {
    std::string r;
    AppendInternalKey(&r, ParsedInternalKey(k, 100, kTypeValue));
    return r;
  };
  std::string start = ik("abcdefghij");
  std::string limit = ik("abzzz");
  std::string sep = start;
  cmp.FindShortestSeparator(&sep, limit);
  EXPECT_GE(cmp.Compare(sep, start), 0);
  EXPECT_LT(cmp.Compare(sep, limit), 0);
  EXPECT_LE(sep.size(), start.size());
}

TEST(DbFormatTest, LookupKeyViews) {
  LookupKey lk("user_key", 77);
  EXPECT_EQ("user_key", lk.user_key().ToString());
  EXPECT_EQ(ExtractUserKey(lk.internal_key()).ToString(), "user_key");
  EXPECT_EQ(77u, ExtractSequence(lk.internal_key()));
}

TEST(DbFormatTest, LookupKeyLongKeyHeapPath) {
  std::string long_key(5000, 'k');
  LookupKey lk(long_key, 1);
  EXPECT_EQ(long_key, lk.user_key().ToString());
}

// ---------------------------------------------------------------------------
// SkipList directly (integer keys, simple comparator).

struct IntComparator {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

TEST(SkipListTest, InsertContainsIterate) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  std::set<uint64_t> model;
  Random rnd(7);
  for (int i = 0; i < 3000; i++) {
    uint64_t v = rnd.Next() % 100000;
    if (model.insert(v).second) list.Insert(v);
  }
  for (uint64_t probe = 0; probe < 100000; probe += 777) {
    EXPECT_EQ(model.count(probe) > 0, list.Contains(probe)) << probe;
  }

  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  auto it = model.begin();
  for (iter.SeekToFirst(); iter.Valid(); iter.Next(), ++it) {
    ASSERT_NE(model.end(), it);
    EXPECT_EQ(*it, iter.key());
  }
  EXPECT_EQ(model.end(), it);
}

TEST(SkipListTest, SeekAndBackward) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  for (uint64_t v = 0; v < 1000; v += 10) list.Insert(v);

  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.Seek(105);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(110u, iter.key());
  iter.Prev();
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(100u, iter.key());
  iter.SeekToLast();
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(990u, iter.key());
  iter.SeekToFirst();
  iter.Prev();
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, ConcurrentReadersDuringInsert) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  std::atomic<uint64_t> published{0};
  std::atomic<bool> failed{false};

  std::thread reader([&] {
    while (published.load(std::memory_order_acquire) < 20000) {
      uint64_t upto = published.load(std::memory_order_acquire);
      // Every published key must be findable (single writer publishes
      // in increasing order with release stores inside Insert).
      uint64_t probe = upto == 0 ? 0 : upto - 1;
      if (upto > 0 && !list.Contains(probe * 7)) {
        failed = true;
        return;
      }
    }
  });
  for (uint64_t i = 0; i < 20000; i++) {
    list.Insert(i * 7);
    published.store(i + 1, std::memory_order_release);
  }
  reader.join();
  EXPECT_FALSE(failed);
}

class MemTableTest : public testing::Test {
 protected:
  void SetUp() override {
    mem_ = new MemTable();
    mem_->Ref();
  }
  void TearDown() override { mem_->Unref(); }

  std::string Get(const std::string& key, SequenceNumber seq,
                  bool* found = nullptr, bool* deleted = nullptr) {
    LookupKey lk(key, seq);
    std::string value;
    Status s;
    bool hit = mem_->Get(lk, &value, &s);
    if (found != nullptr) *found = hit;
    if (deleted != nullptr) *deleted = hit && s.IsNotFound();
    return hit && s.ok() ? value : "";
  }

  MemTable* mem_;
};

TEST_F(MemTableTest, AddThenGet) {
  mem_->Add(1, kTypeValue, "key", "value");
  bool found;
  EXPECT_EQ("value", Get("key", 10, &found));
  EXPECT_TRUE(found);
}

TEST_F(MemTableTest, SnapshotVisibility) {
  mem_->Add(5, kTypeValue, "k", "v5");
  mem_->Add(10, kTypeValue, "k", "v10");
  mem_->Add(15, kTypeValue, "k", "v15");

  EXPECT_EQ("v15", Get("k", 100));
  EXPECT_EQ("v15", Get("k", 15));
  EXPECT_EQ("v10", Get("k", 14));
  EXPECT_EQ("v10", Get("k", 10));
  EXPECT_EQ("v5", Get("k", 9));
  bool found;
  Get("k", 4, &found);
  EXPECT_FALSE(found);  // no version visible below seq 5
}

TEST_F(MemTableTest, DeletionShadowsValue) {
  mem_->Add(1, kTypeValue, "k", "v");
  mem_->Add(2, kTypeDeletion, "k", "");
  bool found, deleted;
  Get("k", 100, &found, &deleted);
  EXPECT_TRUE(found);
  EXPECT_TRUE(deleted);
  // Older snapshot still sees the value.
  EXPECT_EQ("v", Get("k", 1, &found, &deleted));
  EXPECT_FALSE(deleted);
}

TEST_F(MemTableTest, MissingKeyNotFound) {
  mem_->Add(1, kTypeValue, "a", "1");
  mem_->Add(1, kTypeValue, "c", "3");
  bool found;
  Get("b", 100, &found);
  EXPECT_FALSE(found);
}

TEST_F(MemTableTest, IteratorYieldsInternalKeyOrder) {
  mem_->Add(3, kTypeValue, "b", "b3");
  mem_->Add(1, kTypeValue, "a", "a1");
  mem_->Add(2, kTypeValue, "b", "b2");
  mem_->Add(4, kTypeDeletion, "c", "");

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->SeekToFirst();
  std::vector<std::pair<std::string, SequenceNumber>> seen;
  while (iter->Valid()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    seen.emplace_back(parsed.user_key.ToString(), parsed.sequence);
    iter->Next();
  }
  ASSERT_EQ(4u, seen.size());
  EXPECT_EQ(std::make_pair(std::string("a"), SequenceNumber{1}), seen[0]);
  EXPECT_EQ(std::make_pair(std::string("b"), SequenceNumber{3}), seen[1]);
  EXPECT_EQ(std::make_pair(std::string("b"), SequenceNumber{2}), seen[2]);
  EXPECT_EQ(std::make_pair(std::string("c"), SequenceNumber{4}), seen[3]);
}

TEST_F(MemTableTest, IteratorSeek) {
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%03d", i);
    mem_->Add(i + 1, kTypeValue, key, "v");
  }
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  LookupKey lk("key050", kMaxSequenceNumber);
  iter->Seek(lk.internal_key());
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key050", ExtractUserKey(iter->key()).ToString());

  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key099", ExtractUserKey(iter->key()).ToString());
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
  EXPECT_EQ(1000u, mem_->num_entries());
}

TEST_F(MemTableTest, RandomizedAgainstReferenceModel) {
  Random rnd(42);
  std::map<std::string, std::string> model;
  SequenceNumber seq = 1;
  for (int i = 0; i < 5000; i++) {
    std::string key = "k" + std::to_string(rnd.Uniform(500));
    if (rnd.OneIn(4)) {
      mem_->Add(seq++, kTypeDeletion, key, "");
      model.erase(key);
    } else {
      std::string value = "v" + std::to_string(rnd.Next());
      mem_->Add(seq++, kTypeValue, key, value);
      model[key] = value;
    }
  }
  for (int k = 0; k < 500; k++) {
    std::string key = "k" + std::to_string(k);
    bool found, deleted;
    std::string value = Get(key, seq, &found, &deleted);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(!found || deleted) << key;
    } else {
      ASSERT_TRUE(found) << key;
      EXPECT_FALSE(deleted) << key;
      EXPECT_EQ(it->second, value) << key;
    }
  }
}

TEST(WriteBatchTest, EmptyBatch) {
  WriteBatch b;
  EXPECT_EQ(0, b.Count());
  EXPECT_EQ(0u, WriteBatchInternal::UserBytes(&b));
}

TEST(WriteBatchTest, PutDeleteCount) {
  WriteBatch b;
  b.Put("a", "1");
  b.Delete("b");
  b.Put("c", "33");
  EXPECT_EQ(3, b.Count());
  EXPECT_EQ(1u + 1 + 1 + 1 + 2, WriteBatchInternal::UserBytes(&b));
}

TEST(WriteBatchTest, InsertIntoMemTable) {
  WriteBatch b;
  b.Put("k1", "v1");
  b.Put("k2", "v2");
  b.Delete("k1");
  WriteBatchInternal::SetSequence(&b, 100);

  MemTable* mem = new MemTable();
  mem->Ref();
  ASSERT_TRUE(WriteBatchInternal::InsertInto(&b, mem).ok());

  LookupKey lk1("k1", 200);
  std::string value;
  Status s;
  ASSERT_TRUE(mem->Get(lk1, &value, &s));
  EXPECT_TRUE(s.IsNotFound());  // deleted at seq 102

  LookupKey lk2("k2", 200);
  ASSERT_TRUE(mem->Get(lk2, &value, &s));
  EXPECT_EQ("v2", value);

  // Snapshot before the delete sees the value.
  LookupKey lk3("k1", 100);
  ASSERT_TRUE(mem->Get(lk3, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("v1", value);
  mem->Unref();
}

TEST(WriteBatchTest, AppendMergesBatches) {
  WriteBatch a, b;
  a.Put("x", "1");
  b.Put("y", "2");
  b.Delete("z");
  WriteBatchInternal::Append(&a, &b);
  EXPECT_EQ(3, a.Count());

  struct Collector : WriteBatch::Handler {
    std::vector<std::string> ops;
    void Put(const Slice& k, const Slice& v) override {
      ops.push_back("put:" + k.ToString() + "=" + v.ToString());
    }
    void Delete(const Slice& k) override {
      ops.push_back("del:" + k.ToString());
    }
  } collector;
  ASSERT_TRUE(a.Iterate(&collector).ok());
  ASSERT_EQ(3u, collector.ops.size());
  EXPECT_EQ("put:x=1", collector.ops[0]);
  EXPECT_EQ("put:y=2", collector.ops[1]);
  EXPECT_EQ("del:z", collector.ops[2]);
}

TEST(WriteBatchTest, CorruptionDetected) {
  WriteBatch b;
  b.Put("k", "v");
  std::string contents = WriteBatchInternal::Contents(&b).ToString();
  contents.resize(contents.size() - 1);  // chop the value
  WriteBatch broken;
  WriteBatchInternal::SetContents(&broken, contents);
  struct NullHandler : WriteBatch::Handler {
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
  } handler;
  EXPECT_TRUE(broken.Iterate(&handler).IsCorruption());
}

TEST(WriteBatchTest, SequenceRoundTrip) {
  WriteBatch b;
  WriteBatchInternal::SetSequence(&b, 0xdeadbeefcafe);
  EXPECT_EQ(0xdeadbeefcafeull, WriteBatchInternal::Sequence(&b));
}

}  // namespace
}  // namespace iamdb
