// Read-amplification properties (paper Sec 5.3.2):
//  * point reads cost ~1 device seek regardless of engine — Bloom filters
//    skip the sequences without the target (~0.2% false positives at 14
//    bits/key);
//  * absent-key reads cost ~0 seeks;
//  * scans cannot use Blooms: LSA pays ~0.5t seeks per multi-sequence
//    node while IAM/LSM pay at most one per level.
#include <gtest/gtest.h>

#include "core/db.h"
#include "env/mem_env.h"
#include "stats/io_stats.h"
#include "util/random.h"

namespace iamdb {
namespace {

struct ReadAmpParam {
  EngineType engine;
  AmtPolicy policy;
  const char* name;
};

class ReadAmpTest : public testing::TestWithParam<ReadAmpParam> {
 protected:
  void SetUp() override {
    Options options;
    options.env = &env_;
    options.engine = GetParam().engine;
    options.amt.policy = GetParam().policy;
    options.node_capacity = 64 << 10;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    // Tiny cache: reads actually hit the "device".
    options.block_cache_capacity = 16 << 10;
    options.amt.memory_budget_bytes = 16 << 10;
    options.leveled.max_bytes_level1 = 256 << 10;
    options.leveled.target_file_size = 32 << 10;
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());

    std::string value(100, 'v');
    Random64 rnd(1);
    for (int i = 0; i < 40000; i++) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), Key(static_cast<int>(rnd.Next() % 60000)),
                   value)
              .ok());
      // Quiesce between memtable rotations (~500 puts apart), so every
      // flush lands on a fully drained tree and the final shape — and the
      // seek counts asserted below — is identical run to run.  With the
      // flush-priority scheduler the writer otherwise outruns merges by a
      // timing-dependent amount.
      if (i % 250 == 249) ASSERT_TRUE(db_->WaitForQuiescence().ok());
    }
    ASSERT_TRUE(db_->WaitForQuiescence().ok());
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  MemEnv env_;
  std::unique_ptr<DB> db_;
};

TEST_P(ReadAmpTest, PointReadsCostAboutOneSeek) {
  Random64 rnd(7);
  uint64_t seeks = 0, hits = 0;
  for (int i = 0; i < 600; i++) {
    std::string key = Key(static_cast<int>(rnd.Next() % 60000));
    OpIoScope scope;
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.ok()) {
      hits++;
      seeks += scope.context().seeks;
    }
  }
  ASSERT_GT(hits, 100u);
  double seeks_per_hit = static_cast<double>(seeks) / hits;
  // Each found read: one data-block seek (bloom skips other sequences /
  // levels).  Tiny slack for bloom false positives and boundary blocks.
  EXPECT_LT(seeks_per_hit, 1.5) << GetParam().name;
  EXPECT_GE(seeks_per_hit, 0.5) << GetParam().name;  // cache is tiny
}

TEST_P(ReadAmpTest, AbsentReadsCostNearZeroSeeks) {
  uint64_t seeks = 0;
  const int probes = 600;
  for (int i = 0; i < probes; i++) {
    OpIoScope scope;
    std::string value;
    Status s = db_->Get(ReadOptions(), "absent" + std::to_string(i), &value);
    ASSERT_TRUE(s.IsNotFound());
    seeks += scope.context().seeks;
  }
  // 14-bit blooms: ~0.2% false-positive rate per sequence.
  EXPECT_LT(static_cast<double>(seeks) / probes, 0.2) << GetParam().name;
}

TEST_P(ReadAmpTest, ScanSeeksBoundedPerSequence) {
  Random64 rnd(9);
  uint64_t seeks = 0;
  const int scans = 100;
  for (int i = 0; i < scans; i++) {
    OpIoScope scope;
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    iter->Seek(Key(static_cast<int>(rnd.Next() % 60000)));
    for (int j = 0; j < 20 && iter->Valid(); j++) iter->Next();
    seeks += scope.context().seeks;
  }
  double per_scan = static_cast<double>(seeks) / scans;
  if (GetParam().policy == AmtPolicy::kLsa &&
      GetParam().engine == EngineType::kAmt) {
    // Multi-sequence nodes: every sequence of every touched node seeks.
    EXPECT_GT(per_scan, 2.0) << "LSA scans should pay for sequences";
  } else {
    // One seek per level-ish for short scans.
    EXPECT_LT(per_scan, 16.0) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ReadAmpTest,
    testing::Values(
        ReadAmpParam{EngineType::kLeveled, AmtPolicy::kLsa, "leveled"},
        ReadAmpParam{EngineType::kAmt, AmtPolicy::kLsa, "lsa"},
        ReadAmpParam{EngineType::kAmt, AmtPolicy::kIam, "iam"}),
    [](const testing::TestParamInfo<ReadAmpParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace iamdb
