// Crash-consistency harness: drives every engine (leveled, LSA, IAM)
// through seeded op histories, simulates a crash at each planted sync
// point (FaultInjectionEnv deactivates, the unsynced tail is torn away),
// reopens, and model-checks the durability contract:
//
//   * the recovered state is apply(history[0..j)) for some j — whole
//     batches only, no holes, no partial resurrection;
//   * j covers every sync-acknowledged write;
//   * forward and reverse scans agree with each other and the model;
//   * the store is fully usable (writes + invariants) after recovery.
//
// Every cycle is seed-exact: failures print the seed and IAMDB_TEST_SEED
// replays it (docs/TESTING.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/db.h"
#include "env/fault_injection_env.h"
#include "env/mem_env.h"
#include "shard/shard_map.h"
#include "shard/sharded_db.h"
#include "table/iterator.h"
#include "test_seed.h"
#include "util/random.h"
#include "util/sync_point.h"

namespace iamdb {
namespace {

constexpr int kSeedsPerPoint = 20;
constexpr int kSeedsPerOpenPoint = 6;

struct EngineConfig {
  EngineType engine;
  AmtPolicy policy;
  const char* name;
};

constexpr EngineConfig kEngines[] = {
    {EngineType::kLeveled, AmtPolicy::kLsa, "Leveled"},
    {EngineType::kAmt, AmtPolicy::kLsa, "Lsa"},
    {EngineType::kAmt, AmtPolicy::kIam, "Iam"},
};

// A crash trigger: the sync point to arm plus a spread for the armed hit
// index (points that fire often get a wide spread so crashes land all
// through the run; rare points a narrow one so they actually trigger).
struct CrashPoint {
  const char* point;
  int hit_spread;
};

constexpr CrashPoint kRuntimePoints[] = {
    {"DBImpl::Write:BeforeWalAppend", 60},
    {"DBImpl::Write:AfterWalAppend", 60},
    {"DBImpl::Write:AfterWalSync", 6},
    {"DBImpl::SwitchMemTable:AfterOldWalSeal", 3},
    {"DBImpl::SwitchMemTable:AfterNewWal", 3},
    {"DBImpl::LogEdit:BeforeManifestAppend", 3},
    {"DBImpl::LogEdit:AfterManifestAppend", 3},
    {"DBImpl::ImmFlushed:BeforeWalRemove", 2},
    {"ManifestWriter::Append:AfterRecord", 3},
};

// Points that only fire inside DB::Open (the manifest rewrite): the crash
// is injected into a reopen instead of the op run.
constexpr CrashPoint kOpenPoints[] = {
    {"DBImpl::WriteSnapshotManifest:BeforeCreate", 1},
    {"ManifestWriter::Create:AfterBase", 1},
    {"ManifestWriter::Create:AfterCurrent", 1},
    {"DBImpl::RemoveObsoleteFiles:Start", 1},
};

// One logical operation: a WriteBatch of puts (value nullopt = delete).
struct Op {
  std::vector<std::pair<std::string, std::optional<std::string>>> writes;
  bool sync = false;
};

using Model = std::map<std::string, std::string>;

void ApplyOp(const Op& op, Model* model) {
  for (const auto& [key, value] : op.writes) {
    if (value.has_value()) {
      (*model)[key] = *value;
    } else {
      model->erase(key);
    }
  }
}

std::string Key(uint64_t i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%04llu", static_cast<unsigned long long>(i));
  return buf;
}

// Values embed the op serial so distinct histories produce distinct
// states and the prefix search cannot be fooled by collisions.
Op MakeOp(Random64* rnd, int serial) {
  Op op;
  const uint32_t kind = static_cast<uint32_t>(rnd->Next() % 100);
  const int width = kind < 10 ? 3 : 1;  // 10% multi-key batches
  for (int w = 0; w < width; w++) {
    std::string key = Key(rnd->Next() % 120);
    if (kind >= 10 && kind < 25) {
      op.writes.emplace_back(std::move(key), std::nullopt);
    } else {
      size_t len = 20 + rnd->Next() % 90;
      std::string value =
          "v" + std::to_string(serial) + "." + std::to_string(w) + "-";
      value.resize(len, 'x');
      op.writes.emplace_back(std::move(key), std::move(value));
    }
  }
  op.sync = (rnd->Next() % 8) == 0;
  return op;
}

Options MakeOptions(const EngineConfig& cfg, Env* env) {
  Options options;
  options.env = env;
  options.engine = cfg.engine;
  options.amt.policy = cfg.policy;
  options.node_capacity = 4 << 10;  // minimum: flush every ~40 small ops
  options.table.block_size = 256;
  options.amt.fanout = 3;
  options.leveled.max_bytes_level1 = 16 << 10;
  options.leveled.target_file_size = 4 << 10;
  options.leveled.l0_compaction_trigger = 2;
  options.block_cache_capacity = 1 << 20;
  options.background_threads = 1;
  // IAMDB_TEST_COMPRESSION reruns the whole crash matrix with a block
  // codec enabled; recovery must be byte-exact either way.
  options.table.compression = test::TestCompression();
  return options;
}

// Drives `count` ops against `db`, appending to *history.  Stops early on
// the first failed op (the simulated crash surfacing).  Returns the index
// of the last sync-acknowledged op, carried in/out so multiple phases can
// share one history.
void DriveOps(DB* db, Random64* rnd, int count, std::vector<Op>* history,
              int* last_acked_sync) {
  for (int i = 0; i < count; i++) {
    Op op = MakeOp(rnd, static_cast<int>(history->size()));
    WriteBatch batch;
    for (const auto& [key, value] : op.writes) {
      if (value.has_value()) {
        batch.Put(key, *value);
      } else {
        batch.Delete(key);
      }
    }
    WriteOptions wo;
    wo.sync = op.sync;
    Status s = db->Write(wo, &batch);
    history->push_back(std::move(op));
    if (!s.ok()) break;  // crash surfaced; the op is "maybe applied"
    if (history->back().sync) {
      *last_acked_sync = static_cast<int>(history->size()) - 1;
    }
  }
}

// Reopens the store and asserts the durability contract against `history`.
void VerifyRecovered(const Options& options, const std::vector<Op>& history,
                     int last_acked_sync) {
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/db", &db);
  ASSERT_TRUE(s.ok()) << "recovery failed: " << s.ToString();

  Model dump;
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    dump[iter->key().ToString()] = iter->value().ToString();
  }
  ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();

  // Reverse scan agrees with the forward scan.
  Model reverse_dump;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    reverse_dump[iter->key().ToString()] = iter->value().ToString();
  }
  ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();
  ASSERT_EQ(dump, reverse_dump);

  // The recovered state must equal apply(history[0..j)) for some j
  // (whole batches, no holes), with j covering every acked sync write.
  Model model;
  int matched = dump.empty() ? 0 : -1;
  for (size_t j = 0; j < history.size(); j++) {
    ApplyOp(history[j], &model);
    if (dump == model) matched = static_cast<int>(j) + 1;
  }
  ASSERT_GE(matched, 0)
      << "recovered state is not a prefix of the op history ("
      << history.size() << " ops, " << dump.size() << " keys recovered)";
  ASSERT_GE(matched, last_acked_sync + 1)
      << "sync-acknowledged op " << last_acked_sync
      << " lost: recovered state matches only the first " << matched
      << " ops";

  // Point reads agree with the scan.
  Model prefix_model;
  for (int j = 0; j < matched; j++) ApplyOp(history[j], &prefix_model);
  int probes = 0;
  for (const auto& [key, value] : prefix_model) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok()) << key;
    ASSERT_EQ(value, got) << key;
    if (++probes >= 10) break;
  }
  std::string got;
  ASSERT_TRUE(db->Get(ReadOptions(), "zz-absent", &got).IsNotFound());

  // The store must be fully usable after recovery.
  Random64 rnd(matched + 1);
  Model post = dump;
  for (int i = 0; i < 30; i++) {
    Op op = MakeOp(&rnd, 100000 + i);
    WriteBatch batch;
    for (const auto& [key, value] : op.writes) {
      if (value.has_value()) {
        batch.Put(key, *value);
      } else {
        batch.Delete(key);
      }
    }
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
    ApplyOp(op, &post);
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->CheckInvariants(true).ok());
  Model final_dump;
  std::unique_ptr<Iterator> final_iter(db->NewIterator(ReadOptions()));
  for (final_iter->SeekToFirst(); final_iter->Valid(); final_iter->Next()) {
    final_dump[final_iter->key().ToString()] =
        final_iter->value().ToString();
  }
  ASSERT_TRUE(final_iter->status().ok());
  ASSERT_EQ(post, final_dump);
}

// Tears the "disk" down to what a crash would leave, seed-varied between
// exact truncation, random tear points, and lost directory entries.
void SimulateDiskAfterCrash(FaultInjectionEnv* fault, uint64_t seed) {
  Random64 rnd(seed ^ 0x5eedf00dull);
  switch (rnd.Next() % 3) {
    case 0:
      ASSERT_TRUE(fault->DropUnsyncedFileData().ok());
      break;
    case 1: {
      Random64 tear(seed ^ 0x7ea4ull);
      ASSERT_TRUE(fault->DropRandomUnsyncedFileData(&tear).ok());
      break;
    }
    default:
      ASSERT_TRUE(fault->DeleteFilesCreatedAfterLastDirSync().ok());
      ASSERT_TRUE(fault->DropUnsyncedFileData().ok());
      break;
  }
  fault->Heal();
}

// One runtime-crash cycle: open, arm the point, drive ops until the crash
// surfaces (or the op budget ends), tear the disk, verify recovery.
// Accumulates the point's hit count into *total_hits.
void RunRuntimeCrashCycle(const EngineConfig& cfg, const CrashPoint& pt,
                          uint64_t seed, uint64_t* total_hits) {
  SCOPED_TRACE(test::SeedTrace(seed));
  SyncPoint::Instance()->Reset();

  MemEnv mem;
  FaultInjectionEnv fault(&mem);
  Options options = MakeOptions(cfg, &fault);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  fault.MarkDirSynced();  // the freshly opened directory is durable

  Random64 rnd(seed * 2654435761ull + 17);
  const int arm_hit =
      1 + static_cast<int>(rnd.Next() % static_cast<uint64_t>(pt.hit_spread));
  auto remaining = std::make_shared<std::atomic<int>>(arm_hit);
  FaultInjectionEnv* fault_ptr = &fault;
  SyncPoint::Instance()->SetCallback(
      pt.point, [fault_ptr, remaining](void*) {
        if (remaining->fetch_sub(1) == 1) {
          fault_ptr->SetFilesystemActive(false);
        }
      });
  SyncPoint::Instance()->EnableProcessing();

  std::vector<Op> history;
  int last_acked_sync = -1;
  DriveOps(db.get(), &rnd, 120, &history, &last_acked_sync);

  *total_hits += SyncPoint::Instance()->HitCount(pt.point);
  SyncPoint::Instance()->Reset();
  db.reset();  // the "process" dies; close never syncs anything

  SimulateDiskAfterCrash(&fault, seed);
  VerifyRecovered(options, history, last_acked_sync);
}

// One open-crash cycle: run ops crash-free, then inject the crash into a
// reopen (the manifest-rewrite path), then verify a third open recovers.
void RunOpenCrashCycle(const EngineConfig& cfg, const CrashPoint& pt,
                       uint64_t seed) {
  SCOPED_TRACE(test::SeedTrace(seed));
  SyncPoint::Instance()->Reset();

  MemEnv mem;
  FaultInjectionEnv fault(&mem);
  Options options = MakeOptions(cfg, &fault);

  std::vector<Op> history;
  int last_acked_sync = -1;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
    Random64 rnd(seed * 0x9e3779b9ull + 3);
    DriveOps(db.get(), &rnd, 80, &history, &last_acked_sync);
  }

  auto remaining = std::make_shared<std::atomic<int>>(1);
  FaultInjectionEnv* fault_ptr = &fault;
  SyncPoint::Instance()->SetCallback(
      pt.point, [fault_ptr, remaining](void*) {
        if (remaining->fetch_sub(1) == 1) {
          fault_ptr->SetFilesystemActive(false);
        }
      });
  SyncPoint::Instance()->EnableProcessing();
  {
    // This open crashes partway; it may fail or limp through — both are
    // legitimate outcomes, the contract only constrains the next open.
    std::unique_ptr<DB> crashed;
    DB::Open(options, "/db", &crashed);
  }
  SyncPoint::Instance()->Reset();

  ASSERT_TRUE(fault.DropUnsyncedFileData().ok());
  fault.Heal();
  VerifyRecovered(options, history, last_acked_sync);
}

// ---------------------------------------------------------------------------
// Parameterization: engine x crash point.

struct CrashParam {
  EngineConfig cfg;
  CrashPoint pt;
  bool open_time;
};

std::string ParamName(const testing::TestParamInfo<CrashParam>& info) {
  std::string name = info.param.cfg.name;
  name += '_';
  for (const char* p = info.param.pt.point; *p != '\0'; p++) {
    if (std::isalnum(static_cast<unsigned char>(*p))) {
      name += *p;
    } else if (!name.empty() && name.back() != '_') {
      name += '_';
    }
  }
  return name;
}

std::vector<CrashParam> AllParams(bool open_time) {
  std::vector<CrashParam> params;
  for (const auto& cfg : kEngines) {
    if (open_time) {
      for (const auto& pt : kOpenPoints) params.push_back({cfg, pt, true});
    } else {
      for (const auto& pt : kRuntimePoints) params.push_back({cfg, pt, false});
    }
  }
  return params;
}

class CrashPointTest : public testing::TestWithParam<CrashParam> {};

TEST_P(CrashPointTest, RecoversToConsistentPrefix) {
#ifndef IAMDB_SYNC_POINTS
  GTEST_SKIP() << "sync points compiled out (build with -DIAMDB_SYNC_POINTS=ON)";
#else
  const CrashParam& param = GetParam();
  uint64_t override_seed = 0;
  uint64_t total_hits = 0;
  if (test::SeedOverridden(&override_seed)) {
    RunRuntimeCrashCycle(param.cfg, param.pt, override_seed, &total_hits);
    return;
  }
  for (uint64_t seed = 0; seed < kSeedsPerPoint; seed++) {
    RunRuntimeCrashCycle(param.cfg, param.pt, seed, &total_hits);
    if (HasFatalFailure()) return;
  }
  // A point that never fired means the hook moved or died: fail loudly
  // rather than silently losing coverage.
  EXPECT_GT(total_hits, 0u) << param.pt.point << " never fired";
#endif
}

class OpenCrashPointTest : public testing::TestWithParam<CrashParam> {};

TEST_P(OpenCrashPointTest, RecoversAfterCrashDuringOpen) {
#ifndef IAMDB_SYNC_POINTS
  GTEST_SKIP() << "sync points compiled out (build with -DIAMDB_SYNC_POINTS=ON)";
#else
  const CrashParam& param = GetParam();
  uint64_t override_seed = 0;
  if (test::SeedOverridden(&override_seed)) {
    RunOpenCrashCycle(param.cfg, param.pt, override_seed);
    return;
  }
  for (uint64_t seed = 0; seed < kSeedsPerOpenPoint; seed++) {
    RunOpenCrashCycle(param.cfg, param.pt, seed);
    if (HasFatalFailure()) return;
  }
#endif
}

INSTANTIATE_TEST_SUITE_P(Points, CrashPointTest,
                         testing::ValuesIn(AllParams(false)), ParamName);
INSTANTIATE_TEST_SUITE_P(Points, OpenCrashPointTest,
                         testing::ValuesIn(AllParams(true)), ParamName);

// ---------------------------------------------------------------------------
// Sync-point-free crash harness: deactivates the filesystem between two
// seeded op counts instead of at a named point, so this coverage survives
// builds with the hooks compiled out (plain Release).

class EngineCrashTest : public testing::TestWithParam<int> {};

TEST_P(EngineCrashTest, CrashAtSeededOpIndex) {
  const EngineConfig& cfg = kEngines[GetParam()];
  uint64_t override_seed = 0;
  const bool overridden = test::SeedOverridden(&override_seed);
  for (uint64_t seed = 0; seed < (overridden ? 1 : kSeedsPerPoint); seed++) {
    const uint64_t effective = overridden ? override_seed : seed;
    SCOPED_TRACE(test::SeedTrace(effective));
    MemEnv mem;
    FaultInjectionEnv fault(&mem);
    Options options = MakeOptions(cfg, &fault);

    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
    fault.MarkDirSynced();

    Random64 rnd(effective * 31 + 7);
    std::vector<Op> history;
    int last_acked_sync = -1;
    DriveOps(db.get(), &rnd, 20 + rnd.Next() % 100, &history,
             &last_acked_sync);
    fault.SetFilesystemActive(false);  // crash between two ops
    DriveOps(db.get(), &rnd, 10, &history, &last_acked_sync);
    db.reset();

    SimulateDiskAfterCrash(&fault, effective);
    VerifyRecovered(options, history, last_acked_sync);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineCrashTest, testing::Values(0, 1, 2),
                         [](const testing::TestParamInfo<int>& info) {
                           return kEngines[info.param].name;
                         });

// ---------------------------------------------------------------------------
// Sharded crash consistency.  ShardedDB's durability contract is per shard:
// each shard recovers to a consistent prefix of ITS projection of the
// global op history (a cross-shard batch may survive on some shards and
// not others — documented in docs/SHARDING.md).  A sync ack fsyncs only
// the WALs of the shards that op touched, so the acked-coverage floor is
// per shard: the latest acked sync op that wrote to shard S pins all of
// S's earlier writes, while shards the sync never touched promise
// nothing.  Sync-point-free like EngineCrashTest so the coverage survives
// plain Release builds.

constexpr int kCrashShards = 3;

void VerifyShardedRecovered(const Options& options,
                            const std::vector<Op>& history,
                            int last_acked_sync) {
  std::unique_ptr<DB> db;
  Status s = ShardedDB::Open(options, "/db", 0, &db);
  ASSERT_TRUE(s.ok()) << "sharded recovery failed: " << s.ToString();
  ASSERT_EQ(db->NumShards(), kCrashShards);

  // A sync ack only fsyncs the WALs of the shards the op wrote to, so each
  // shard's guaranteed prefix ends at the latest acked sync op touching it.
  int acked_floor[kCrashShards];
  for (int shard = 0; shard < kCrashShards; shard++) acked_floor[shard] = -1;
  for (int j = 0; j <= last_acked_sync; j++) {
    if (!history[j].sync) continue;
    for (const auto& [key, value] : history[j].writes) {
      acked_floor[ShardOf(key, kCrashShards)] = j;
    }
  }

  Model union_of_shards;
  for (int shard = 0; shard < kCrashShards; shard++) {
    SCOPED_TRACE("shard " + std::to_string(shard));
    Model dump;
    std::unique_ptr<Iterator> iter(
        db->NewShardIterator(ReadOptions(), shard));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ASSERT_EQ(ShardOf(iter->key(), kCrashShards),
                static_cast<uint32_t>(shard));
      dump[iter->key().ToString()] = iter->value().ToString();
      union_of_shards[iter->key().ToString()] = iter->value().ToString();
    }
    ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();

    // Replay this shard's projection of the history; the recovered shard
    // state must equal some prefix of it, covering every acked op.
    Model model;
    int matched = dump.empty() ? 0 : -1;
    for (size_t j = 0; j < history.size(); j++) {
      for (const auto& [key, value] : history[j].writes) {
        if (ShardOf(key, kCrashShards) != static_cast<uint32_t>(shard)) {
          continue;
        }
        if (value.has_value()) {
          model[key] = *value;
        } else {
          model.erase(key);
        }
      }
      if (dump == model) matched = static_cast<int>(j) + 1;
    }
    ASSERT_GE(matched, 0)
        << "shard state is not a prefix of its projected history ("
        << dump.size() << " keys recovered)";
    ASSERT_GE(matched, acked_floor[shard] + 1)
        << "sync-acknowledged op " << acked_floor[shard]
        << " lost on this shard: covers only the first " << matched
        << " ops";
  }

  // The merged view is exactly the union of the shard views (shards
  // partition the keyspace, so the union has no conflicts to resolve).
  Model merged;
  std::unique_ptr<Iterator> all(db->NewIterator(ReadOptions()));
  for (all->SeekToFirst(); all->Valid(); all->Next()) {
    merged[all->key().ToString()] = all->value().ToString();
  }
  ASSERT_TRUE(all->status().ok());
  ASSERT_EQ(merged, union_of_shards);

  // Usable after recovery: cross-shard batches land, invariants hold.
  Random64 rnd(42);
  Model post = merged;
  for (int i = 0; i < 30; i++) {
    Op op = MakeOp(&rnd, 200000 + i);
    WriteBatch batch;
    for (const auto& [key, value] : op.writes) {
      if (value.has_value()) {
        batch.Put(key, *value);
      } else {
        batch.Delete(key);
      }
    }
    ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
    ApplyOp(op, &post);
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->CheckInvariants(true).ok());
  Model final_dump;
  std::unique_ptr<Iterator> final_iter(db->NewIterator(ReadOptions()));
  for (final_iter->SeekToFirst(); final_iter->Valid(); final_iter->Next()) {
    final_dump[final_iter->key().ToString()] = final_iter->value().ToString();
  }
  ASSERT_TRUE(final_iter->status().ok());
  ASSERT_EQ(post, final_dump);
}

class ShardedCrashTest : public testing::TestWithParam<int> {};

TEST_P(ShardedCrashTest, PerShardPrefixRecovery) {
  const EngineConfig& cfg = kEngines[GetParam()];
  uint64_t override_seed = 0;
  const bool overridden = test::SeedOverridden(&override_seed);
  for (uint64_t seed = 0; seed < (overridden ? 1 : kSeedsPerPoint); seed++) {
    const uint64_t effective = overridden ? override_seed : seed;
    SCOPED_TRACE(test::SeedTrace(effective));
    MemEnv mem;
    FaultInjectionEnv fault(&mem);
    Options options = MakeOptions(cfg, &fault);

    std::unique_ptr<DB> db;
    ASSERT_TRUE(ShardedDB::Open(options, "/db", kCrashShards, &db).ok());
    fault.MarkDirSynced();

    Random64 rnd(effective * 131 + 9);
    std::vector<Op> history;
    int last_acked_sync = -1;
    DriveOps(db.get(), &rnd, 20 + rnd.Next() % 100, &history,
             &last_acked_sync);
    fault.SetFilesystemActive(false);  // crash between two ops
    DriveOps(db.get(), &rnd, 10, &history, &last_acked_sync);
    db.reset();

    SimulateDiskAfterCrash(&fault, effective);
    VerifyShardedRecovered(options, history, last_acked_sync);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ShardedCrashTest, testing::Values(0, 1, 2),
                         [](const testing::TestParamInfo<int>& info) {
                           return kEngines[info.param].name;
                         });

}  // namespace
}  // namespace iamdb
