// Block builder/reader tests including prefix-compression correctness and
// bidirectional iteration.
#include <gtest/gtest.h>

#include <map>

#include "core/dbformat.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/two_level_iterator.h"
#include "util/random.h"

namespace iamdb {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 1,
                 ValueType t = kTypeValue) {
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(user_key, seq, t));
  return r;
}

class BlockTest : public testing::Test {
 protected:
  // Builds a block from the (already sorted) entries.
  void Build(const std::vector<std::pair<std::string, std::string>>& entries,
             int restart_interval = 16) {
    BlockBuilder builder(restart_interval);
    for (const auto& [k, v] : entries) builder.Add(k, v);
    block_ = std::make_unique<Block>(builder.Finish().ToString());
  }

  Iterator* NewIterator() { return block_->NewIterator(&cmp_); }

  InternalKeyComparator cmp_;
  std::unique_ptr<Block> block_;
};

TEST_F(BlockTest, EmptyBlock) {
  Build({});
  std::unique_ptr<Iterator> iter(NewIterator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->SeekToLast();
  EXPECT_FALSE(iter->Valid());
  iter->Seek(IKey("x"));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(BlockTest, ForwardScanSeesEverything) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    entries.emplace_back(IKey(buf), "value" + std::to_string(i));
  }
  Build(entries);
  std::unique_ptr<Iterator> iter(NewIterator());
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    EXPECT_EQ(entries[i].first, iter->key().ToString());
    EXPECT_EQ(entries[i].second, iter->value().ToString());
  }
  EXPECT_EQ(100, i);
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(BlockTest, BackwardScanSeesEverything) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 57; i++) {  // not a multiple of the restart interval
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    entries.emplace_back(IKey(buf), std::to_string(i));
  }
  Build(entries, 8);
  std::unique_ptr<Iterator> iter(NewIterator());
  int i = 56;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev(), i--) {
    ASSERT_GE(i, 0);
    EXPECT_EQ(entries[i].first, iter->key().ToString());
  }
  EXPECT_EQ(-1, i);
}

TEST_F(BlockTest, SeekFindsExactAndSuccessor) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; i += 2) {  // even keys only
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    entries.emplace_back(IKey(buf), "v");
  }
  Build(entries, 4);
  std::unique_ptr<Iterator> iter(NewIterator());

  iter->Seek(IKey("key0050"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0050", ExtractUserKey(iter->key()).ToString());

  // Odd key seeks to its successor.
  iter->Seek(IKey("key0051"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0052", ExtractUserKey(iter->key()).ToString());

  // Before the first key.
  iter->Seek(IKey("aaaa"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key0000", ExtractUserKey(iter->key()).ToString());

  // Past the last key.
  iter->Seek(IKey("zzzz"));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(BlockTest, PrefixCompressionRoundTrip) {
  // Long shared prefixes exercise the shared/non_shared encoding.
  std::vector<std::pair<std::string, std::string>> entries;
  std::string prefix(200, 'p');
  for (int i = 0; i < 50; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%04d", i);
    entries.emplace_back(IKey(prefix + buf), std::string(i, 'x'));
  }
  Build(entries);
  std::unique_ptr<Iterator> iter(NewIterator());
  int i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
    EXPECT_EQ(entries[i].first, iter->key().ToString());
    EXPECT_EQ(entries[i].second, iter->value().ToString());
  }
  EXPECT_EQ(50, i);
}

TEST_F(BlockTest, RestartInterval1DisablesSharing) {
  std::vector<std::pair<std::string, std::string>> entries = {
      {IKey("aaa"), "1"}, {IKey("aab"), "2"}, {IKey("aac"), "3"}};
  Build(entries, 1);
  std::unique_ptr<Iterator> iter(NewIterator());
  iter->Seek(IKey("aab"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("2", iter->value().ToString());
}

TEST_F(BlockTest, SeekOrderingWithSequenceNumbers) {
  // Same user key, multiple versions: newest (highest seq) first.
  std::vector<std::pair<std::string, std::string>> entries = {
      {IKey("k", 30), "v30"}, {IKey("k", 20), "v20"}, {IKey("k", 10), "v10"}};
  Build(entries);
  std::unique_ptr<Iterator> iter(NewIterator());

  // Seek at snapshot 25: should find v20 (newest <= 25).
  iter->Seek(IKey("k", 25, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("v20", iter->value().ToString());

  // Seek at snapshot 100 finds v30.
  iter->Seek(IKey("k", 100, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("v30", iter->value().ToString());

  // Seek at snapshot 5 finds nothing for "k".
  iter->Seek(IKey("k", 5, kValueTypeForSeek));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(BlockTest, CorruptBlockYieldsErrorIterator) {
  Block bad(std::string("xy"));  // too short for the restart count
  std::unique_ptr<Iterator> iter(bad.NewIterator(&cmp_));
  EXPECT_FALSE(iter->Valid());
  EXPECT_FALSE(iter->status().ok());
}

// ---------------------------------------------------------------------------
// TwoLevelIterator over blocks (index block -> data blocks), incl. empty
// sub-blocks and bidirectional traversal.

TEST_F(BlockTest, TwoLevelIteratorComposesBlocks) {
  // Three "data blocks" of 10 keys each, addressed 0..2; the index block
  // maps each block's last key to its id.
  std::vector<std::unique_ptr<Block>> data_blocks;
  BlockBuilder index_builder(1);
  for (int b = 0; b < 3; b++) {
    BlockBuilder builder(4);
    std::string last;
    for (int i = 0; i < 10; i++) {
      last = IKey("key" + std::to_string(b * 10 + i + 100));
      builder.Add(last, "v" + std::to_string(b * 10 + i));
    }
    data_blocks.push_back(
        std::make_unique<Block>(builder.Finish().ToString()));
    index_builder.Add(last, std::string(1, static_cast<char>('0' + b)));
  }
  Block index_block(index_builder.Finish().ToString());

  auto* cmp = &cmp_;
  auto& blocks = data_blocks;
  std::unique_ptr<Iterator> iter(NewTwoLevelIterator(
      index_block.NewIterator(cmp),
      [&blocks, cmp](const Slice& index_value) -> Iterator* {
        int id = index_value[0] - '0';
        if (id < 0 || id > 2) return NewErrorIterator(Status::Corruption(""));
        return blocks[id]->NewIterator(cmp);
      }));

  // Full forward pass: 30 entries in order.
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    EXPECT_EQ("v" + std::to_string(count), iter->value().ToString());
  }
  EXPECT_EQ(30, count);

  // Seek into the middle block.
  iter->Seek(IKey("key115"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("v15", iter->value().ToString());

  // Cross-block Next/Prev.
  iter->Seek(IKey("key119"));  // last of block 1
  ASSERT_TRUE(iter->Valid());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("v20", iter->value().ToString());  // first of block 2
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("v19", iter->value().ToString());

  // Backward full pass.
  count = 29;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev(), count--) {
    EXPECT_EQ("v" + std::to_string(count), iter->value().ToString());
  }
  EXPECT_EQ(-1, count);
}

TEST_F(BlockTest, TwoLevelIteratorSkipsEmptyBlocks) {
  // Middle block is empty: forward and backward traversal must hop it.
  BlockBuilder empty(4);
  Block empty_block(empty.Finish().ToString());
  BlockBuilder b0(4), b2(4);
  b0.Add(IKey("a"), "va");
  b2.Add(IKey("z"), "vz");
  Block block0(b0.Finish().ToString());
  Block block2(b2.Finish().ToString());

  BlockBuilder index_builder(1);
  index_builder.Add(IKey("a"), "0");
  index_builder.Add(IKey("m"), "1");  // empty
  index_builder.Add(IKey("z"), "2");
  Block index_block(index_builder.Finish().ToString());

  auto* cmp = &cmp_;
  std::unique_ptr<Iterator> iter(NewTwoLevelIterator(
      index_block.NewIterator(cmp),
      [&, cmp](const Slice& index_value) -> Iterator* {
        switch (index_value[0]) {
          case '0': return block0.NewIterator(cmp);
          case '1': return empty_block.NewIterator(cmp);
          default: return block2.NewIterator(cmp);
        }
      }));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("va", iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("vz", iter->value().ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("va", iter->value().ToString());
  iter->Next();
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(BlockTest, RandomizedMixedOperations) {
  Random rnd(1234);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    std::string key = IKey("key" + std::to_string(10000 + rnd.Uniform(100000)));
    model[key] = "v" + std::to_string(i);
  }
  std::vector<std::pair<std::string, std::string>> entries(model.begin(),
                                                           model.end());
  // model is keyed by encoded internal key; std::map's bytewise order
  // matches internal-key order here because all sequences are equal.
  Build(entries, 7);
  std::unique_ptr<Iterator> iter(NewIterator());
  for (int trial = 0; trial < 200; trial++) {
    std::string probe =
        IKey("key" + std::to_string(10000 + rnd.Uniform(100000)));
    iter->Seek(probe);
    auto it = model.lower_bound(probe);
    if (it == model.end()) {
      EXPECT_FALSE(iter->Valid());
    } else {
      ASSERT_TRUE(iter->Valid());
      EXPECT_EQ(it->first, iter->key().ToString());
      EXPECT_EQ(it->second, iter->value().ToString());
    }
  }
}

}  // namespace
}  // namespace iamdb
