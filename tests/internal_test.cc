// Unit tests for internal core machinery: compaction visibility rules,
// the user-facing DB iterator, manifest round trips, file naming, the
// snapshot list, and the merging iterator.
#include <gtest/gtest.h>

#include <set>

#include "core/compaction_stream.h"
#include "core/db_iter.h"
#include "core/filename.h"
#include "core/manifest.h"
#include "core/snapshot.h"
#include "env/mem_env.h"
#include "util/random.h"
#include "table/merging_iterator.h"

namespace iamdb {
namespace {

std::string IKey(const std::string& k, SequenceNumber s,
                 ValueType t = kTypeValue) {
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(k, s, t));
  return r;
}

// Simple sorted-vector internal iterator for feeding test streams.
class TestIter final : public Iterator {
 public:
  explicit TestIter(std::vector<std::pair<std::string, std::string>> data)
      : data_(std::move(data)), index_(data_.size()) {}
  bool Valid() const override { return index_ < data_.size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override { index_ = data_.empty() ? 0 : data_.size() - 1; }
  void Seek(const Slice& target) override {
    InternalKeyComparator cmp;
    index_ = 0;
    while (index_ < data_.size() &&
           cmp.Compare(Slice(data_[index_].first), target) < 0) {
      index_++;
    }
  }
  void Next() override { index_++; }
  void Prev() override { index_ = index_ == 0 ? data_.size() : index_ - 1; }
  Slice key() const override { return Slice(data_[index_].first); }
  Slice value() const override { return Slice(data_[index_].second); }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> data_;
  size_t index_;
};

// ---------------------------------------------------------------------------
// CompactionStream (visibility-driven record dropping)

std::vector<std::pair<std::string, std::string>> Drain(CompactionStream* s) {
  std::vector<std::pair<std::string, std::string>> out;
  while (s->Valid()) {
    out.emplace_back(s->key().ToString(), s->value().ToString());
    s->Next();
  }
  return out;
}

TEST(CompactionStreamTest, KeepsNewestDropsShadowed) {
  auto* in = new TestIter({{IKey("a", 30), "v30"},
                           {IKey("a", 20), "v20"},
                           {IKey("a", 10), "v10"},
                           {IKey("b", 5), "b5"}});
  CompactionStream stream(in, /*smallest_snapshot=*/100, false);
  auto out = Drain(&stream);
  ASSERT_EQ(2u, out.size());
  EXPECT_EQ("v30", out[0].second);
  EXPECT_EQ("b5", out[1].second);
  EXPECT_EQ(2u, stream.entries_dropped());
}

TEST(CompactionStreamTest, SnapshotPinsOldVersions) {
  auto* in = new TestIter({{IKey("a", 30), "v30"},
                           {IKey("a", 20), "v20"},
                           {IKey("a", 10), "v10"}});
  // A snapshot at 20 needs v20 (its visible version); v10 is shadowed by
  // v20 which is <= 20, so v10 drops.
  CompactionStream stream(in, /*smallest_snapshot=*/20, false);
  auto out = Drain(&stream);
  ASSERT_EQ(2u, out.size());
  EXPECT_EQ("v30", out[0].second);
  EXPECT_EQ("v20", out[1].second);
}

TEST(CompactionStreamTest, TombstoneKeptWhenNotBottommost) {
  auto* in = new TestIter({{IKey("a", 30, kTypeDeletion), ""},
                           {IKey("a", 10), "old"}});
  CompactionStream stream(in, 100, /*bottommost=*/false);
  auto out = Drain(&stream);
  // The tombstone must survive to shadow deeper data; "old" is shadowed.
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ(kTypeDeletion, ExtractValueType(out[0].first));
}

TEST(CompactionStreamTest, TombstoneDroppedAtBottom) {
  auto* in = new TestIter({{IKey("a", 30, kTypeDeletion), ""},
                           {IKey("a", 10), "old"},
                           {IKey("b", 5), "keep"}});
  CompactionStream stream(in, 100, /*bottommost=*/true);
  auto out = Drain(&stream);
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ("keep", out[0].second);
}

TEST(CompactionStreamTest, TombstoneAboveSnapshotKeptEvenAtBottom) {
  auto* in = new TestIter({{IKey("a", 30, kTypeDeletion), ""},
                           {IKey("a", 10), "old"}});
  // Snapshot at 15 still sees "old"; the tombstone (seq 30 > 15) must stay
  // and so must the old value.
  CompactionStream stream(in, 15, /*bottommost=*/true);
  auto out = Drain(&stream);
  ASSERT_EQ(2u, out.size());
  EXPECT_EQ(kTypeDeletion, ExtractValueType(out[0].first));
  EXPECT_EQ("old", out[1].second);
}

TEST(CompactionStreamTest, EmptyInput) {
  CompactionStream stream(new TestIter({}), 100, true);
  EXPECT_FALSE(stream.Valid());
  EXPECT_TRUE(stream.status().ok());
}

TEST(CompactionStreamTest, RandomizedAgainstReferenceRule) {
  // Property: the surviving set is exactly {newest version per key} union
  // {versions that are the newest <= smallest_snapshot for their key},
  // minus bottommost tombstones <= snapshot.
  iamdb::Random rnd(4242);
  for (int trial = 0; trial < 20; trial++) {
    SequenceNumber snapshot = 1 + rnd.Uniform(200);
    bool bottommost = rnd.OneIn(2);
    std::vector<std::pair<std::string, std::string>> input;
    for (int k = 0; k < 30; k++) {
      std::string user = "k" + std::to_string(k);
      int versions = 1 + rnd.Uniform(6);
      std::set<SequenceNumber> seqs;
      while (static_cast<int>(seqs.size()) < versions) {
        seqs.insert(1 + rnd.Uniform(200));
      }
      for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
        ValueType t = rnd.OneIn(3) ? kTypeDeletion : kTypeValue;
        input.emplace_back(IKey(user, *it, t),
                           t == kTypeValue ? "v" + std::to_string(*it) : "");
      }
    }

    // Reference survival rule.
    std::set<std::string> expect;
    std::string prev_user;
    SequenceNumber last_seq = kMaxSequenceNumber;
    for (const auto& [ikey, value] : input) {
      ParsedInternalKey pk;
      ASSERT_TRUE(ParseInternalKey(ikey, &pk));
      std::string user = pk.user_key.ToString();
      if (user != prev_user) {
        prev_user = user;
        last_seq = kMaxSequenceNumber;
      }
      bool drop = false;
      if (last_seq <= snapshot) {
        drop = true;
      } else if (pk.type == kTypeDeletion && pk.sequence <= snapshot &&
                 bottommost) {
        drop = true;
      }
      last_seq = pk.sequence;
      if (!drop) expect.insert(ikey);
    }

    CompactionStream stream(new TestIter(input), snapshot, bottommost);
    std::set<std::string> got;
    while (stream.Valid()) {
      got.insert(stream.key().ToString());
      stream.Next();
    }
    EXPECT_EQ(expect, got) << "trial " << trial << " snap " << snapshot
                           << " bottom " << bottommost;
  }
}

// ---------------------------------------------------------------------------
// DBIter (user-visible view)

TEST(DbIterTest, HidesDeletedAndOldVersions) {
  auto* in = new TestIter({{IKey("a", 10), "a10"},
                           {IKey("b", 30, kTypeDeletion), ""},
                           {IKey("b", 20), "b20"},
                           {IKey("c", 15), "c15"},
                           {IKey("c", 5), "c5"}});
  std::unique_ptr<Iterator> iter(NewDBIterator(in, 100));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", iter->key().ToString());
  EXPECT_EQ("a10", iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("c", iter->key().ToString());  // b hidden by tombstone
  EXPECT_EQ("c15", iter->value().ToString());
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST(DbIterTest, RespectsSequenceHorizon) {
  auto* in = new TestIter({{IKey("k", 50), "new"}, {IKey("k", 10), "old"}});
  std::unique_ptr<Iterator> iter(NewDBIterator(in, 20));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("old", iter->value().ToString());
}

TEST(DbIterTest, SeekLandsOnVisibleEntry) {
  auto* in = new TestIter({{IKey("a", 5), "a"},
                           {IKey("m", 99), "too-new"},
                           {IKey("m", 5), "m-old"},
                           {IKey("z", 5), "z"}});
  std::unique_ptr<Iterator> iter(NewDBIterator(in, 10));
  iter->Seek("m");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("m", iter->key().ToString());
  EXPECT_EQ("m-old", iter->value().ToString());
}

TEST(DbIterTest, DeletionResurrectedByNewerPut) {
  auto* in = new TestIter({{IKey("k", 30), "revived"},
                           {IKey("k", 20, kTypeDeletion), ""},
                           {IKey("k", 10), "original"}});
  std::unique_ptr<Iterator> iter(NewDBIterator(in, 100));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("revived", iter->value().ToString());
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST(DbIterTest, SeekToLastAndPrev) {
  auto* in = new TestIter({{IKey("a", 5), "a5"},
                           {IKey("b", 30, kTypeDeletion), ""},
                           {IKey("b", 20), "b20"},
                           {IKey("c", 15), "c15"},
                           {IKey("c", 5), "c5"}});
  std::unique_ptr<Iterator> iter(NewDBIterator(in, 100));
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("c", iter->key().ToString());
  EXPECT_EQ("c15", iter->value().ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", iter->key().ToString()) << "b is tombstoned";
  EXPECT_EQ("a5", iter->value().ToString());
  iter->Prev();
  EXPECT_FALSE(iter->Valid());
}

TEST(DbIterTest, DirectionSwitches) {
  auto* in = new TestIter({{IKey("a", 1), "a"},
                           {IKey("b", 1), "b"},
                           {IKey("c", 1), "c"}});
  std::unique_ptr<Iterator> iter(NewDBIterator(in, 100));
  iter->SeekToFirst();
  iter->Next();  // at b
  ASSERT_EQ("b", iter->key().ToString());
  iter->Prev();  // back to a
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", iter->key().ToString());
  iter->Next();  // forward again to b
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("c", iter->key().ToString());
  iter->Prev();
  EXPECT_EQ("b", iter->key().ToString());
}

TEST(DbIterTest, ReverseSeesNewestVisibleVersion) {
  auto* in = new TestIter({{IKey("k", 50), "too-new"},
                           {IKey("k", 10), "visible"},
                           {IKey("z", 5), "z"}});
  std::unique_ptr<Iterator> iter(NewDBIterator(in, 20));
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("z", iter->key().ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k", iter->key().ToString());
  EXPECT_EQ("visible", iter->value().ToString());
}

// ---------------------------------------------------------------------------
// Merging iterator

TEST(MergingIteratorTest, InterleavesSortedStreams) {
  InternalKeyComparator cmp;
  std::vector<Iterator*> children = {
      new TestIter({{IKey("a", 1), "1"}, {IKey("c", 1), "3"}}),
      new TestIter({{IKey("b", 1), "2"}, {IKey("d", 1), "4"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, children.data(), 2));
  std::string got;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    got += merged->value().ToString();
  }
  EXPECT_EQ("1234", got);
}

TEST(MergingIteratorTest, BidirectionalSwitch) {
  InternalKeyComparator cmp;
  std::vector<Iterator*> children = {
      new TestIter({{IKey("a", 1), "a"}, {IKey("c", 1), "c"}}),
      new TestIter({{IKey("b", 1), "b"}, {IKey("d", 1), "d"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, children.data(), 2));
  merged->SeekToFirst();
  merged->Next();  // at b
  ASSERT_EQ("b", merged->value().ToString());
  merged->Prev();  // direction switch back to a
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("a", merged->value().ToString());
  merged->Next();
  EXPECT_EQ("b", merged->value().ToString());
}

TEST(MergingIteratorTest, SeekAcrossChildren) {
  InternalKeyComparator cmp;
  std::vector<Iterator*> children = {
      new TestIter({{IKey("a", 1), "a"}, {IKey("z", 1), "z"}}),
      new TestIter({{IKey("m", 1), "m"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, children.data(), 2));
  merged->Seek(IKey("g", kMaxSequenceNumber));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("m", merged->value().ToString());
}

// ---------------------------------------------------------------------------
// Manifest round trips

TEST(ManifestTest, EditEncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.SetLogNumber(7);
  edit.SetNextFileNumber(42);
  edit.SetNextNodeId(99);
  edit.SetLastSequence(123456789);
  edit.SetNumLevels(5);
  NodeEdit node;
  node.level = 3;
  node.node_id = 17;
  node.file_number = 20;
  node.meta_end = 4096;
  node.data_bytes = 3000;
  node.num_entries = 10;
  node.seq_count = 2;
  node.range_lo = "aaa";
  node.range_hi = "zzz";
  node.smallest_ikey = IKey("aaa", 1);
  node.largest_ikey = IKey("zzz", 9);
  edit.AddNode(node);
  edit.RemoveNode(2, 13);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ(7u, *decoded.log_number());
  EXPECT_EQ(42u, *decoded.next_file_number());
  EXPECT_EQ(99u, *decoded.next_node_id());
  EXPECT_EQ(123456789u, *decoded.last_sequence());
  EXPECT_EQ(5, *decoded.num_levels());
  ASSERT_EQ(1u, decoded.added().size());
  EXPECT_EQ(17u, decoded.added()[0].node_id);
  EXPECT_EQ("zzz", decoded.added()[0].range_hi);
  ASSERT_EQ(1u, decoded.removed().size());
  EXPECT_EQ(13u, decoded.removed()[0].second);
}

TEST(ManifestTest, CreateAppendRecover) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("/m").ok());
  ManifestWriter writer(&env, "/m");

  VersionEdit base;
  base.SetLogNumber(3);
  base.SetNextFileNumber(10);
  base.SetNumLevels(2);
  NodeEdit n1;
  n1.level = 0;
  n1.node_id = 1;
  n1.file_number = 4;
  n1.range_lo = "a";
  n1.range_hi = "m";
  base.AddNode(n1);
  ASSERT_TRUE(writer.Create(9, base).ok());

  // Append: n1 replaced by n2 (an MSTable append is remove+add).
  VersionEdit edit;
  edit.RemoveNode(0, 1);
  NodeEdit n2 = n1;
  n2.node_id = 1;
  n2.meta_end = 777;
  n2.seq_count = 2;
  edit.AddNode(n2);
  NodeEdit n3;
  n3.level = 1;
  n3.node_id = 2;
  n3.file_number = 5;
  n3.range_lo = "n";
  n3.range_hi = "z";
  edit.AddNode(n3);
  ASSERT_TRUE(writer.Append(edit, true).ok());

  RecoveredState state;
  ASSERT_TRUE(RecoverManifest(&env, "/m", &state).ok());
  EXPECT_EQ(3u, state.log_number);
  EXPECT_EQ(10u, state.next_file_number);
  EXPECT_EQ(2, state.num_levels);
  ASSERT_EQ(2u, state.nodes.size());
  ASSERT_EQ(1u, state.nodes[0].size());
  EXPECT_EQ(777u, state.nodes[0][0].meta_end);  // update applied
  EXPECT_EQ(2u, state.nodes[0][0].seq_count);
  ASSERT_EQ(1u, state.nodes[1].size());
  EXPECT_EQ(2u, state.nodes[1][0].node_id);
}

TEST(ManifestTest, RecoverFailsWithoutCurrent) {
  MemEnv env;
  RecoveredState state;
  EXPECT_FALSE(RecoverManifest(&env, "/nope", &state).ok());
}

// ---------------------------------------------------------------------------
// Filenames

TEST(FileNameTest, FormatAndParseRoundTrip) {
  uint64_t number;
  FileType type;

  ASSERT_TRUE(ParseFileName("000123.log", &number, &type));
  EXPECT_EQ(123u, number);
  EXPECT_EQ(FileType::kLogFile, type);

  ASSERT_TRUE(ParseFileName("000007.mst", &number, &type));
  EXPECT_EQ(FileType::kTableFile, type);

  ASSERT_TRUE(ParseFileName("MANIFEST-000004", &number, &type));
  EXPECT_EQ(4u, number);
  EXPECT_EQ(FileType::kManifestFile, type);

  ASSERT_TRUE(ParseFileName("CURRENT", &number, &type));
  EXPECT_EQ(FileType::kCurrentFile, type);

  EXPECT_FALSE(ParseFileName("garbage", &number, &type));
  EXPECT_FALSE(ParseFileName("123.unknown", &number, &type));
  EXPECT_FALSE(ParseFileName("MANIFEST-", &number, &type));
  EXPECT_FALSE(ParseFileName("MANIFEST-12x", &number, &type));
}

TEST(FileNameTest, SetCurrentPointsAtManifest) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDir("/d").ok());
  ASSERT_TRUE(SetCurrentFile(&env, "/d", 42).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/d/CURRENT", &contents).ok());
  EXPECT_EQ("MANIFEST-000042\n", contents);
}

// ---------------------------------------------------------------------------
// Snapshot list

TEST(SnapshotListTest, OldestNewestOrdering) {
  SnapshotList list;
  EXPECT_TRUE(list.empty());
  SnapshotImpl* s1 = list.New(10);
  SnapshotImpl* s2 = list.New(20);
  SnapshotImpl* s3 = list.New(30);
  EXPECT_EQ(10u, list.oldest()->sequence());
  EXPECT_EQ(30u, list.newest()->sequence());
  list.Delete(s1);
  EXPECT_EQ(20u, list.oldest()->sequence());
  list.Delete(s3);
  EXPECT_EQ(20u, list.newest()->sequence());
  list.Delete(s2);
  EXPECT_TRUE(list.empty());
}

}  // namespace
}  // namespace iamdb
