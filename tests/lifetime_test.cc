// Resource-lifetime tests: physical file deletion is deferred while live
// iterators/readers reference replaced nodes, and byte accounting stays
// internally consistent across reorganisations.
#include <gtest/gtest.h>

#include "core/db.h"
#include "core/filename.h"
#include "env/mem_env.h"
#include "util/random.h"

namespace iamdb {
namespace {

class LifetimeTest : public testing::TestWithParam<EngineType> {
 protected:
  Options MakeOptions() {
    Options options;
    options.env = &env_;
    options.engine = GetParam();
    options.node_capacity = 24 << 10;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    options.leveled.max_bytes_level1 = 96 << 10;
    options.leveled.target_file_size = 12 << 10;
    return options;
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  size_t CountTableFiles() {
    std::vector<std::string> children;
    env_.GetChildren("/db", &children);
    size_t count = 0;
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kTableFile) {
        count++;
      }
    }
    return count;
  }

  MemEnv env_;
};

TEST_P(LifetimeTest, IteratorPinsReplacedFiles) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  std::string value(100, 'v');
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "original").ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  size_t files_before = CountTableFiles();
  ASSERT_GT(files_before, 0u);

  // Iterator pins the current version (and with it, the table files).
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());

  // Replace everything: compactions rewrite all nodes.
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 5000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "replacement").ok());
    }
  }
  ASSERT_TRUE(db->FlushAll().ok());

  // The old files are obsolete but must still be readable via the pinned
  // iterator; total on-"disk" files exceed the live set while pinned.
  size_t files_pinned = CountTableFiles();
  int count = 0;
  for (; iter->Valid(); iter->Next(), count++) {
    ASSERT_EQ("original", iter->value().ToString()) << iter->key().ToString();
  }
  EXPECT_EQ(5000, count);
  EXPECT_TRUE(iter->status().ok());

  // Releasing the iterator lets the deferred deletions happen.
  iter.reset();
  size_t files_after = CountTableFiles();
  EXPECT_LT(files_after, files_pinned);

  // Fresh reads see the replacement.
  std::string v;
  ASSERT_TRUE(db->Get(ReadOptions(), Key(123), &v).ok());
  EXPECT_EQ("replacement", v);
}

TEST_P(LifetimeTest, CloseReleasesEverything) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  std::string value(100, 'v');
  for (int i = 0; i < 8000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i % 2000), value).ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  db.reset();
  // Reopen: obsolete-file GC must leave only live tables; verify the live
  // set equals what the recovered manifest references by reopening and
  // checking all keys.
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  for (int i = 0; i < 2000; i += 61) {
    std::string v;
    EXPECT_TRUE(db->Get(ReadOptions(), Key(i), &v).ok()) << Key(i);
  }
}

TEST_P(LifetimeTest, AccountingConsistency) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  Random64 rnd(3);
  std::string value(100, 'v');
  uint64_t user_bytes = 0;
  for (int i = 0; i < 20000; i++) {
    std::string key = Key(static_cast<int>(rnd.Next() % 6000));
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    user_bytes += key.size() + value.size();
  }
  ASSERT_TRUE(db->WaitForQuiescence().ok());
  DbStats stats = db->GetStats();

  // User-byte accounting is exact.
  EXPECT_EQ(user_bytes, stats.user_bytes);

  // Level-byte totals equal the reason totals (wal excluded from levels).
  const AmpStats& amps = db->amp_stats();
  uint64_t level_total = 0;
  for (int l = 0; l < AmpStats::kMaxLevels; l++) {
    level_total += amps.level_bytes(l);
  }
  uint64_t reason_total = 0;
  for (int r = 0; r < static_cast<int>(WriteReason::kNumReasons); r++) {
    WriteReason reason = static_cast<WriteReason>(r);
    if (reason == WriteReason::kWal) continue;
    reason_total += amps.reason_bytes(reason);
  }
  EXPECT_EQ(level_total, reason_total);

  // The WAL carried at least the user payload.
  EXPECT_GE(amps.reason_bytes(WriteReason::kWal), user_bytes);

  // Physical footprint >= live data (dead metadata, shadowed versions).
  uint64_t live = 0;
  for (uint64_t bytes : stats.level_bytes) live += bytes;
  EXPECT_GE(stats.space_used_bytes, live);

  // Actual device writes (CountingEnv) >= everything we attributed.
  EXPECT_GE(stats.io.bytes_written,
            reason_total + amps.reason_bytes(WriteReason::kWal));
}

INSTANTIATE_TEST_SUITE_P(Engines, LifetimeTest,
                         testing::Values(EngineType::kLeveled,
                                         EngineType::kAmt),
                         [](const testing::TestParamInfo<EngineType>& info) {
                           return info.param == EngineType::kLeveled
                                      ? "Leveled"
                                      : "Amt";
                         });

}  // namespace
}  // namespace iamdb
