// Native batched MultiGet: byte-equivalence with looped Gets at one
// snapshot across all three engines, device-read coalescing on a cold
// cache (the batch must issue strictly fewer reads than the loop), and a
// race cell exercising MultiGet against concurrent writes, flushes and
// compactions (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "stats/io_stats.h"
#include "util/random.h"

namespace iamdb {
namespace {

struct MultiGetParam {
  EngineType engine;
  AmtPolicy policy;
  const char* name;
};

class MultiGetTest : public testing::TestWithParam<MultiGetParam> {
 protected:
  Options MakeOptions() {
    Options options;
    options.env = &env_;
    options.engine = GetParam().engine;
    options.amt.policy = GetParam().policy;
    options.node_capacity = 64 << 10;
    options.table.block_size = 1024;
    options.amt.fanout = 4;
    // Tiny cache so block reads actually hit the "device".
    options.block_cache_capacity = 16 << 10;
    options.amt.memory_budget_bytes = 16 << 10;
    options.leveled.max_bytes_level1 = 256 << 10;
    options.leveled.target_file_size = 32 << 10;
    return options;
  }

  void Open() { ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db_).ok()); }

  // Close + reopen: a fresh DBImpl gets fresh (cold) cache tiers while the
  // MemEnv keeps the files.
  void Reopen() {
    db_.reset();
    Open();
  }

  std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%08d", i);
    return buf;
  }

  std::string Value(int i, int version) {
    return "val-" + std::to_string(i) + "-v" + std::to_string(version) +
           std::string(80, 'x');
  }

  // Reference semantics: MultiGet must match Get key for key.
  void ExpectMatchesLoopedGets(const ReadOptions& options,
                               const std::vector<std::string>& keys) {
    std::vector<Slice> slices;
    slices.reserve(keys.size());
    for (const std::string& k : keys) slices.emplace_back(k);
    std::vector<std::string> values(keys.size());
    std::vector<Status> statuses(keys.size());
    db_->MultiGet(options, slices.size(), slices.data(), values.data(),
                  statuses.data());

    for (size_t i = 0; i < keys.size(); i++) {
      std::string expect_value;
      Status expect = db_->Get(options, keys[i], &expect_value);
      EXPECT_EQ(expect.ok(), statuses[i].ok()) << keys[i];
      EXPECT_EQ(expect.IsNotFound(), statuses[i].IsNotFound()) << keys[i];
      if (expect.ok()) EXPECT_EQ(expect_value, values[i]) << keys[i];
    }
  }

  MemEnv env_;
  std::unique_ptr<DB> db_;
};

// Seeded workload with overwrites and deletes; batches mix hits, misses,
// deleted keys and duplicates, read both at the committed state and at a
// snapshot pinned before a second wave of overwrites.
TEST_P(MultiGetTest, EquivalentToLoopedGets) {
  Open();
  Random64 rnd(42);
  const int kKeySpace = 6000;

  auto mutate = [&](int ops, int version) {
    for (int i = 0; i < ops; i++) {
      int k = static_cast<int>(rnd.Next() % kKeySpace);
      if (rnd.Next() % 7 == 0) {
        ASSERT_TRUE(db_->Delete(WriteOptions(), Key(k)).ok());
      } else {
        ASSERT_TRUE(db_->Put(WriteOptions(), Key(k), Value(k, version)).ok());
      }
      if (i % 500 == 499) ASSERT_TRUE(db_->WaitForQuiescence().ok());
    }
  };

  mutate(8000, 1);
  ASSERT_TRUE(db_->WaitForQuiescence().ok());

  const Snapshot* snap = db_->GetSnapshot();

  // Second wave: overwrites and deletes the snapshot must not observe,
  // ending with unflushed keys so the batch spans mem + disk levels.
  mutate(6000, 2);
  for (int i = 0; i < 200; i++) {
    int k = static_cast<int>(rnd.Next() % kKeySpace);
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(k), Value(k, 3)).ok());
  }

  std::vector<std::string> batch;
  for (int i = 0; i < 192; i++) {
    batch.push_back(Key(static_cast<int>(rnd.Next() % kKeySpace)));
  }
  batch.push_back("absent-before-everything");
  batch.push_back("zzz-absent-after-everything");
  // Duplicate keys must each get the full answer.
  batch.push_back(batch[0]);
  batch.push_back(batch[1]);

  ExpectMatchesLoopedGets(ReadOptions(), batch);

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  ExpectMatchesLoopedGets(at_snap, batch);

  db_->ReleaseSnapshot(snap);
}

// The acceptance metric: a cold-cache batch of 64 adjacent keys must reach
// the device with strictly fewer read ops than 64 looped Gets over the
// same keys — adjacent data blocks coalesce into vectored runs that
// CountingEnv charges as one read each.
TEST_P(MultiGetTest, ColdCacheBatchIssuesFewerDeviceReads) {
  Open();
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
    if (i % 500 == 499) ASSERT_TRUE(db_->WaitForQuiescence().ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->WaitForQuiescence().ok());

  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 10000; i < 10064; i++) keys.push_back(Key(i));
  for (const std::string& k : keys) slices.emplace_back(k);

  Reopen();
  uint64_t multiget_reads = 0;
  {
    std::vector<std::string> values(keys.size());
    std::vector<Status> statuses(keys.size());
    OpIoScope scope;
    db_->MultiGet(ReadOptions(), slices.size(), slices.data(), values.data(),
                  statuses.data());
    multiget_reads = scope.context().seeks;
    for (size_t i = 0; i < keys.size(); i++) {
      ASSERT_TRUE(statuses[i].ok()) << keys[i];
      EXPECT_EQ(Value(10000 + static_cast<int>(i), 1), values[i]);
    }
  }

  // Gauges live on the instance that served the batch (reopen resets them).
  DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.multiget_batches, 1u);
  EXPECT_EQ(stats.multiget_keys, keys.size());

  Reopen();
  uint64_t looped_reads = 0;
  for (const std::string& k : keys) {
    std::string value;
    OpIoScope scope;
    ASSERT_TRUE(db_->Get(ReadOptions(), k, &value).ok()) << k;
    looped_reads += scope.context().seeks;
  }

  EXPECT_LT(multiget_reads, looped_reads) << GetParam().name;
}

// Coalescing gauges flow from the table layer to DbStats.
TEST_P(MultiGetTest, CoalescingGaugesRecorded) {
  Open();
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
    if (i % 500 == 499) ASSERT_TRUE(db_->WaitForQuiescence().ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  Reopen();

  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 5000; i < 5064; i++) keys.push_back(Key(i));
  for (const std::string& k : keys) slices.emplace_back(k);
  std::vector<std::string> values(keys.size());
  std::vector<Status> statuses(keys.size());
  db_->MultiGet(ReadOptions(), slices.size(), slices.data(), values.data(),
                statuses.data());

  DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.multiget_batches, 1u);
  EXPECT_EQ(stats.multiget_keys, keys.size());
  // 64 adjacent keys over ~1KB blocks cannot all live in one block: at
  // least one vectored read covered 2+ adjacent blocks.
  EXPECT_GT(stats.multiget_coalesced_reads, 0u) << GetParam().name;
  EXPECT_GE(stats.multiget_coalesced_blocks,
            2 * stats.multiget_coalesced_reads);
}

// Race cell (TSan): MultiGet batches run against a writer that forces
// memtable rotations, flushes and compactions.  Every returned value must
// be a well-formed version of its key — a torn read, use-after-free of a
// retired memtable, or a double cache insert shows up here.
TEST_P(MultiGetTest, RacesWithFlushAndCompaction) {
  Open();
  const int kKeySpace = 2000;
  for (int i = 0; i < kKeySpace; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 0)).ok());
  }

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::mutex diag_mu;
  std::string diag;

  std::thread writer([&] {
    Random64 rnd(11);
    for (int version = 1; version <= 8 && errors.load() == 0; version++) {
      for (int i = 0; i < kKeySpace; i++) {
        int k = static_cast<int>(rnd.Next() % kKeySpace);
        if (!db_->Put(WriteOptions(), Key(k), Value(k, version)).ok()) {
          errors.fetch_add(1);
          break;
        }
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&, t] {
      Random64 rnd(100 + t);
      while (!done.load()) {
        std::vector<std::string> keys;
        std::vector<Slice> slices;
        for (int i = 0; i < 48; i++) {
          keys.push_back(Key(static_cast<int>(rnd.Next() % kKeySpace)));
        }
        for (const std::string& k : keys) slices.emplace_back(k);
        std::vector<std::string> values(keys.size());
        std::vector<Status> statuses(keys.size());
        db_->MultiGet(ReadOptions(), slices.size(), slices.data(),
                      values.data(), statuses.data());
        for (size_t i = 0; i < keys.size(); i++) {
          // Every key was loaded before the race, so it must be found with
          // a value stamped for exactly that key: "val-<n>-v<version>x...".
          bool ok = statuses[i].ok();
          if (ok) {
            size_t dash = values[i].find("-v", 4);
            ok = values[i].compare(0, 4, "val-") == 0 &&
                 dash != std::string::npos &&
                 Key(atoi(values[i].substr(4, dash - 4).c_str())) == keys[i];
          }
          if (!ok) {
            errors.fetch_add(1);
            std::string retry_value;
            Status retry = db_->Get(ReadOptions(), keys[i], &retry_value);
            std::lock_guard<std::mutex> l(diag_mu);
            if (diag.empty()) {
              diag = "key=" + keys[i] + " status=" +
                     statuses[i].ToString() + " value=" +
                     values[i].substr(0, 40) +
                     " retry_status=" + retry.ToString() +
                     " retry_value=" + retry_value.substr(0, 40);
            }
          }
        }
      }
    });
  }

  writer.join();
  for (std::thread& r : readers) r.join();
  ASSERT_TRUE(db_->WaitForQuiescence().ok());
  EXPECT_EQ(errors.load(), 0) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    Engines, MultiGetTest,
    testing::Values(
        MultiGetParam{EngineType::kLeveled, AmtPolicy::kLsa, "leveled"},
        MultiGetParam{EngineType::kAmt, AmtPolicy::kLsa, "lsa"},
        MultiGetParam{EngineType::kAmt, AmtPolicy::kIam, "iam"}),
    [](const testing::TestParamInfo<MultiGetParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace iamdb
