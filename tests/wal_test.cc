// WAL tests: framing round trips, block boundary handling, corruption and
// torn-tail recovery semantics.
#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "util/random.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace iamdb {
namespace {

class WalTest : public testing::Test {
 protected:
  void SetUp() override { OpenWriter(); }

  void OpenWriter() {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_.NewWritableFile("/log", &file).ok());
    file_ = std::move(file);
    writer_ = std::make_unique<log::Writer>(file_.get());
  }

  void Write(const Slice& record) {
    ASSERT_TRUE(writer_->AddRecord(record).ok());
  }

  struct CollectingReporter : public log::Reader::Reporter {
    size_t dropped_bytes = 0;
    int corruptions = 0;
    void Corruption(size_t bytes, const Status&) override {
      dropped_bytes += bytes;
      corruptions++;
    }
  };

  std::vector<std::string> ReadAll(CollectingReporter* reporter = nullptr) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile("/log", &file).ok());
    log::Reader reader(file.get(), reporter, true);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  void CorruptByte(uint64_t offset) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(&env_, "/log", &contents).ok());
    ASSERT_LT(offset, contents.size());
    contents[offset] ^= 0x42;
    ASSERT_TRUE(WriteStringToFile(&env_, contents, "/log", false).ok());
  }

  MemEnv env_;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<log::Writer> writer_;
};

TEST_F(WalTest, EmptyLog) { EXPECT_TRUE(ReadAll().empty()); }

TEST_F(WalTest, SmallRecordsRoundTrip) {
  Write("one");
  Write("two");
  Write("");
  Write("four");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("one", records[0]);
  EXPECT_EQ("two", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("four", records[3]);
}

TEST_F(WalTest, LargeRecordSpansBlocks) {
  std::string big(5 * log::kBlockSize + 123, 'q');
  for (size_t i = 0; i < big.size(); i++) big[i] = static_cast<char>(i % 251);
  Write(big);
  Write("tail");
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(big, records[0]);
  EXPECT_EQ("tail", records[1]);
}

TEST_F(WalTest, ManyRandomSizedRecords) {
  Random rnd(301);
  std::vector<std::string> expected;
  for (int i = 0; i < 300; i++) {
    std::string rec(rnd.Skewed(14), static_cast<char>('a' + (i % 26)));
    expected.push_back(rec);
    Write(rec);
  }
  auto records = ReadAll();
  ASSERT_EQ(expected.size(), records.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(expected[i], records[i]) << "record " << i;
  }
}

TEST_F(WalTest, RecordExactlyFillingBlockTail) {
  // Header is 7 bytes; leave exactly header-size room, then a record that
  // must start in the next block.
  Write(std::string(log::kBlockSize - 2 * log::kHeaderSize, 'a'));
  Write("b");
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("b", records[1]);
}

TEST_F(WalTest, TornTailIsSilentlyDropped) {
  Write("keep me");
  Write(std::string(10000, 'x'));
  uint64_t full_size;
  ASSERT_TRUE(env_.GetFileSize("/log", &full_size).ok());
  // Chop off the middle of the second record.
  ASSERT_TRUE(env_.Truncate("/log", full_size - 5000).ok());

  CollectingReporter reporter;
  auto records = ReadAll(&reporter);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("keep me", records[0]);
  // A torn tail is a normal crash artifact, not corruption.
  EXPECT_EQ(0, reporter.corruptions);
}

TEST_F(WalTest, ChecksumCorruptionIsReportedAndSkipped) {
  Write("first");
  Write("second");
  Write("third");
  // Corrupt a payload byte of the second record.  Records are tiny, so all
  // three live in block 0: first occupies [0, 7+5), second [12, 12+7+6).
  CorruptByte(12 + log::kHeaderSize + 2);

  CollectingReporter reporter;
  auto records = ReadAll(&reporter);
  // On checksum mismatch the reader drops the rest of the block ("second"
  // AND "third" share block 0), resynchronizing at the next block boundary.
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("first", records[0]);
  EXPECT_GT(reporter.corruptions, 0);
}

TEST_F(WalTest, ReopenedLogAppendsCorrectly) {
  Write("before reopen");
  ASSERT_TRUE(file_->Close().ok());

  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/log", &size).ok());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewAppendableFile("/log", &file).ok());
  log::Writer resumed(file.get(), size);
  ASSERT_TRUE(resumed.AddRecord("after reopen").ok());
  ASSERT_TRUE(file->Close().ok());

  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("before reopen", records[0]);
  EXPECT_EQ("after reopen", records[1]);
}

TEST_F(WalTest, FragmentedRecordReassembly) {
  // A record of ~1.5 blocks forces FIRST+LAST fragments.
  std::string rec(log::kBlockSize + log::kBlockSize / 2, 'z');
  Write(rec);
  auto records = ReadAll();
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ(rec.size(), records[0].size());
}

}  // namespace
}  // namespace iamdb
