// DbStats aggregation (operator+=) and wire-codec completeness.
//
// The guard rail here is tag-driven: both tests below walk every wire tag
// in [1, wire::kMaxDbStatsTag] through a switch with ADD_FAILURE in the
// default branch.  Adding a DbStats field therefore cannot compile-and-pass
// silently — the new tag trips the default until the codec, the
// aggregation operator, and these tests all handle it.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/db.h"
#include "server/wire_protocol.h"
#include "util/coding.h"

namespace iamdb {
namespace {

// Every field nonzero and distinct, so a dropped field shows up as a
// mismatch instead of a lucky 0 == 0.
DbStats MakeStats(uint64_t base) {
  DbStats s;
  s.total_write_amp = 2.0 + base;
  s.level_write_amp = {1.5 + base, 2.5 + base};
  s.level_bytes = {1000 + base, 2000 + base};
  s.level_node_counts = {static_cast<int>(3 + base),
                         static_cast<int>(5 + base)};
  s.user_bytes = 10000 + base;
  s.space_used_bytes = 20000 + base;
  s.cache_usage = 300 + base;
  s.cache_hits = 40 + base;
  s.cache_misses = 50 + base;
  s.mixed_level = static_cast<int>(2 + base % 3);
  s.mixed_level_k = static_cast<int>(1 + base % 4);
  s.pending_debt_bytes = 600 + base;
  s.stall_micros = 700 + base;
  s.io.bytes_written = 800 + base;
  s.io.bytes_read = 900 + base;
  s.io.write_ops = 11 + base;
  s.io.read_ops = 12 + base;
  s.io.fsyncs = 13 + base;
  s.flush_queue_depth = 14 + base;
  s.compact_queue_depth = 15 + base;
  s.subcompactions_run = 16 + base;
  s.rate_limiter_wait_micros = 17 + base;
  s.server_loop_iterations = 18 + base;
  s.server_writev_calls = 19 + base;
  s.server_responses_written = 21 + base;
  s.server_output_buffer_hwm = 22 + base;
  s.server_backpressure_stalls = 23 + base;
  s.server_accept_errors = 24 + base;
  s.pacer_rate_bytes_per_sec = 25 + base;
  s.pacer_ingest_bytes_per_sec = 26 + base;
  s.pacer_retunes = 27 + base;
  s.rate_limiter_paced_wall_micros = 28 + base;
  s.compress_input_bytes = 29 + base;
  s.compress_stored_bytes = 31 + base;
  s.compress_columnar_blocks = 32 + base;
  s.compress_lz_blocks = 33 + base;
  s.compress_raw_fallback_blocks = 34 + base;
  s.decompressed_blocks = 35 + base;
  s.decompress_micros = 36 + base;
  s.compressed_cache_usage = 37 + base;
  s.compressed_cache_hits = 38 + base;
  s.compressed_cache_misses = 39 + base;
  s.arbiter_budget_bytes = 41 + base;
  s.arbiter_write_bytes = 42 + base;
  s.arbiter_read_bytes = 43 + base;
  s.arbiter_retunes = 44 + base;
  s.arbiter_shifts = 45 + base;
  s.mixed_level_retunes = 46 + base;
  s.multiget_batches = 47 + base;
  s.multiget_keys = 48 + base;
  s.multiget_coalesced_reads = 49 + base;
  s.multiget_coalesced_blocks = 51 + base;
  return s;
}

// Walks the tag/len/bytes stream of an encoded DbStats.
std::map<uint32_t, std::string> TagsOf(const std::string& encoded) {
  std::map<uint32_t, std::string> tags;
  Slice in(encoded);
  while (!in.empty()) {
    uint32_t tag = 0, len = 0;
    EXPECT_TRUE(GetVarint32(&in, &tag));
    EXPECT_TRUE(GetVarint32(&in, &len));
    EXPECT_LE(len, in.size());
    tags[tag] = std::string(in.data(), len);
    in.remove_prefix(len);
  }
  return tags;
}

TEST(DbStatsCodecTest, EveryTagEmittedAndNoStrays) {
  std::string encoded;
  wire::EncodeDbStats(MakeStats(1), &encoded);
  std::map<uint32_t, std::string> tags = TagsOf(encoded);
  for (uint32_t tag = 1; tag <= wire::kMaxDbStatsTag; tag++) {
    EXPECT_EQ(tags.count(tag), 1u) << "tag " << tag << " not emitted";
  }
  for (const auto& [tag, bytes] : tags) {
    EXPECT_GE(tag, 1u);
    EXPECT_LE(tag, wire::kMaxDbStatsTag) << "unknown tag " << tag;
  }
}

TEST(DbStatsCodecTest, Roundtrip) {
  DbStats in = MakeStats(7);
  std::string encoded;
  wire::EncodeDbStats(in, &encoded);
  DbStats out;
  ASSERT_TRUE(wire::DecodeDbStats(encoded, &out));

  EXPECT_DOUBLE_EQ(out.total_write_amp, in.total_write_amp);
  ASSERT_EQ(out.level_write_amp.size(), in.level_write_amp.size());
  for (size_t i = 0; i < in.level_write_amp.size(); i++) {
    EXPECT_DOUBLE_EQ(out.level_write_amp[i], in.level_write_amp[i]);
  }
  EXPECT_EQ(out.level_bytes, in.level_bytes);
  EXPECT_EQ(out.level_node_counts, in.level_node_counts);
  EXPECT_EQ(out.user_bytes, in.user_bytes);
  EXPECT_EQ(out.space_used_bytes, in.space_used_bytes);
  EXPECT_EQ(out.cache_usage, in.cache_usage);
  EXPECT_EQ(out.cache_hits, in.cache_hits);
  EXPECT_EQ(out.cache_misses, in.cache_misses);
  EXPECT_EQ(out.mixed_level, in.mixed_level);
  EXPECT_EQ(out.mixed_level_k, in.mixed_level_k);
  EXPECT_EQ(out.pending_debt_bytes, in.pending_debt_bytes);
  EXPECT_EQ(out.stall_micros, in.stall_micros);
  EXPECT_EQ(out.io.bytes_written, in.io.bytes_written);
  EXPECT_EQ(out.io.bytes_read, in.io.bytes_read);
  EXPECT_EQ(out.io.write_ops, in.io.write_ops);
  EXPECT_EQ(out.io.read_ops, in.io.read_ops);
  EXPECT_EQ(out.io.fsyncs, in.io.fsyncs);
  EXPECT_EQ(out.flush_queue_depth, in.flush_queue_depth);
  EXPECT_EQ(out.compact_queue_depth, in.compact_queue_depth);
  EXPECT_EQ(out.subcompactions_run, in.subcompactions_run);
  EXPECT_EQ(out.rate_limiter_wait_micros, in.rate_limiter_wait_micros);
  EXPECT_EQ(out.server_loop_iterations, in.server_loop_iterations);
  EXPECT_EQ(out.server_writev_calls, in.server_writev_calls);
  EXPECT_EQ(out.server_responses_written, in.server_responses_written);
  EXPECT_EQ(out.server_output_buffer_hwm, in.server_output_buffer_hwm);
  EXPECT_EQ(out.server_backpressure_stalls, in.server_backpressure_stalls);
  EXPECT_EQ(out.server_accept_errors, in.server_accept_errors);
  EXPECT_EQ(out.pacer_rate_bytes_per_sec, in.pacer_rate_bytes_per_sec);
  EXPECT_EQ(out.pacer_ingest_bytes_per_sec, in.pacer_ingest_bytes_per_sec);
  EXPECT_EQ(out.pacer_retunes, in.pacer_retunes);
  EXPECT_EQ(out.rate_limiter_paced_wall_micros,
            in.rate_limiter_paced_wall_micros);
  EXPECT_EQ(out.compress_input_bytes, in.compress_input_bytes);
  EXPECT_EQ(out.compress_stored_bytes, in.compress_stored_bytes);
  EXPECT_EQ(out.compress_columnar_blocks, in.compress_columnar_blocks);
  EXPECT_EQ(out.compress_lz_blocks, in.compress_lz_blocks);
  EXPECT_EQ(out.compress_raw_fallback_blocks, in.compress_raw_fallback_blocks);
  EXPECT_EQ(out.decompressed_blocks, in.decompressed_blocks);
  EXPECT_EQ(out.decompress_micros, in.decompress_micros);
  EXPECT_EQ(out.compressed_cache_usage, in.compressed_cache_usage);
  EXPECT_EQ(out.compressed_cache_hits, in.compressed_cache_hits);
  EXPECT_EQ(out.compressed_cache_misses, in.compressed_cache_misses);
  EXPECT_EQ(out.arbiter_budget_bytes, in.arbiter_budget_bytes);
  EXPECT_EQ(out.arbiter_write_bytes, in.arbiter_write_bytes);
  EXPECT_EQ(out.arbiter_read_bytes, in.arbiter_read_bytes);
  EXPECT_EQ(out.arbiter_retunes, in.arbiter_retunes);
  EXPECT_EQ(out.arbiter_shifts, in.arbiter_shifts);
  EXPECT_EQ(out.mixed_level_retunes, in.mixed_level_retunes);
  EXPECT_EQ(out.multiget_batches, in.multiget_batches);
  EXPECT_EQ(out.multiget_keys, in.multiget_keys);
  EXPECT_EQ(out.multiget_coalesced_reads, in.multiget_coalesced_reads);
  EXPECT_EQ(out.multiget_coalesced_blocks, in.multiget_coalesced_blocks);
}

// A compression-off snapshot must keep its historical layout: the tags are
// an omit-when-zero group, so old clients never see them unless a codec or
// the compressed cache actually engaged.
TEST(DbStatsCodecTest, CompressionTagsOmittedWhenIdle) {
  DbStats s = MakeStats(1);
  s.compress_input_bytes = 0;
  s.compress_stored_bytes = 0;
  s.compress_columnar_blocks = 0;
  s.compress_lz_blocks = 0;
  s.compress_raw_fallback_blocks = 0;
  s.decompressed_blocks = 0;
  s.decompress_micros = 0;
  s.compressed_cache_usage = 0;
  s.compressed_cache_hits = 0;
  s.compressed_cache_misses = 0;
  std::string encoded;
  wire::EncodeDbStats(s, &encoded);
  std::map<uint32_t, std::string> tags = TagsOf(encoded);
  for (uint32_t tag = 33; tag <= 42; tag++) {
    EXPECT_EQ(tags.count(tag), 0u) << "idle compression tag " << tag;
  }
  // A single nonzero member pulls the whole group in.
  s.decompressed_blocks = 5;
  encoded.clear();
  wire::EncodeDbStats(s, &encoded);
  tags = TagsOf(encoded);
  for (uint32_t tag = 33; tag <= 42; tag++) {
    EXPECT_EQ(tags.count(tag), 1u) << "active compression tag " << tag;
  }
}

// Same layout guard for the arbiter group: fixed-sizing snapshots (no
// pooled budget) must not grow new tags.
TEST(DbStatsCodecTest, ArbiterTagsOmittedWhenOff) {
  DbStats s = MakeStats(1);
  s.arbiter_budget_bytes = 0;
  s.arbiter_write_bytes = 0;
  s.arbiter_read_bytes = 0;
  s.arbiter_retunes = 0;
  s.arbiter_shifts = 0;
  s.mixed_level_retunes = 0;
  std::string encoded;
  wire::EncodeDbStats(s, &encoded);
  std::map<uint32_t, std::string> tags = TagsOf(encoded);
  for (uint32_t tag = 43; tag <= 48; tag++) {
    EXPECT_EQ(tags.count(tag), 0u) << "idle arbiter tag " << tag;
  }
  // A single nonzero member (an AMT (m,k) retune without an arbiter also
  // counts) pulls the whole group in.
  s.mixed_level_retunes = 3;
  encoded.clear();
  wire::EncodeDbStats(s, &encoded);
  tags = TagsOf(encoded);
  for (uint32_t tag = 43; tag <= 48; tag++) {
    EXPECT_EQ(tags.count(tag), 1u) << "active arbiter tag " << tag;
  }
}

// Same layout guard for the multiget group: a Get-only snapshot must not
// grow new tags until the first batched read.
TEST(DbStatsCodecTest, MultiGetTagsOmittedWhenIdle) {
  DbStats s = MakeStats(1);
  s.multiget_batches = 0;
  s.multiget_keys = 0;
  s.multiget_coalesced_reads = 0;
  s.multiget_coalesced_blocks = 0;
  std::string encoded;
  wire::EncodeDbStats(s, &encoded);
  std::map<uint32_t, std::string> tags = TagsOf(encoded);
  for (uint32_t tag = 49; tag <= 52; tag++) {
    EXPECT_EQ(tags.count(tag), 0u) << "idle multiget tag " << tag;
  }
  // A single nonzero member pulls the whole group in.
  s.multiget_batches = 2;
  encoded.clear();
  wire::EncodeDbStats(s, &encoded);
  tags = TagsOf(encoded);
  for (uint32_t tag = 49; tag <= 52; tag++) {
    EXPECT_EQ(tags.count(tag), 1u) << "active multiget tag " << tag;
  }
}

// Expected combination of two amp ratios, weighted by user bytes.
double WeightedAmp(double a_amp, uint64_t a_user, double b_amp,
                   uint64_t b_user) {
  return (a_amp * static_cast<double>(a_user) +
          b_amp * static_cast<double>(b_user)) /
         static_cast<double>(a_user + b_user);
}

TEST(DbStatsAggregationTest, EveryTagHasAggregationSemantics) {
  // Different vector lengths on purpose: the pad-and-add path must not
  // drop rhs's extra levels.
  DbStats a = MakeStats(1);
  DbStats b = MakeStats(100);
  b.level_bytes.push_back(4242);
  b.level_node_counts.push_back(17);
  b.level_write_amp.push_back(3.25);

  DbStats sum = a;
  sum += b;

  for (uint32_t tag = 1; tag <= wire::kMaxDbStatsTag; tag++) {
    SCOPED_TRACE("tag " + std::to_string(tag));
    switch (tag) {
      case 1:  // user_bytes
        EXPECT_EQ(sum.user_bytes, a.user_bytes + b.user_bytes);
        break;
      case 2:
        EXPECT_EQ(sum.space_used_bytes,
                  a.space_used_bytes + b.space_used_bytes);
        break;
      case 3:
        EXPECT_EQ(sum.cache_usage, a.cache_usage + b.cache_usage);
        break;
      case 4:
        EXPECT_EQ(sum.cache_hits, a.cache_hits + b.cache_hits);
        break;
      case 5:
        EXPECT_EQ(sum.cache_misses, a.cache_misses + b.cache_misses);
        break;
      case 6:
        EXPECT_EQ(sum.stall_micros, a.stall_micros + b.stall_micros);
        break;
      case 7:
        EXPECT_EQ(sum.pending_debt_bytes,
                  a.pending_debt_bytes + b.pending_debt_bytes);
        break;
      case 8:  // structural: max, not sum
        EXPECT_EQ(sum.mixed_level, std::max(a.mixed_level, b.mixed_level));
        break;
      case 9:
        EXPECT_EQ(sum.mixed_level_k,
                  std::max(a.mixed_level_k, b.mixed_level_k));
        break;
      case 10:  // ratio: weighted by user_bytes
        EXPECT_NEAR(sum.total_write_amp,
                    WeightedAmp(a.total_write_amp, a.user_bytes,
                                b.total_write_amp, b.user_bytes),
                    1e-9);
        break;
      case 11: {
        ASSERT_EQ(sum.level_bytes.size(), b.level_bytes.size());
        for (size_t i = 0; i < sum.level_bytes.size(); i++) {
          uint64_t lhs = i < a.level_bytes.size() ? a.level_bytes[i] : 0;
          EXPECT_EQ(sum.level_bytes[i], lhs + b.level_bytes[i]);
        }
        break;
      }
      case 12: {
        ASSERT_EQ(sum.level_node_counts.size(), b.level_node_counts.size());
        for (size_t i = 0; i < sum.level_node_counts.size(); i++) {
          int lhs = i < a.level_node_counts.size() ? a.level_node_counts[i]
                                                   : 0;
          EXPECT_EQ(sum.level_node_counts[i], lhs + b.level_node_counts[i]);
        }
        break;
      }
      case 13: {
        ASSERT_EQ(sum.level_write_amp.size(), b.level_write_amp.size());
        for (size_t i = 0; i < sum.level_write_amp.size(); i++) {
          double lhs = i < a.level_write_amp.size() ? a.level_write_amp[i]
                                                    : 0.0;
          EXPECT_NEAR(sum.level_write_amp[i],
                      WeightedAmp(lhs, a.user_bytes, b.level_write_amp[i],
                                  b.user_bytes),
                      1e-9);
        }
        break;
      }
      case 14:
        EXPECT_EQ(sum.io.bytes_written,
                  a.io.bytes_written + b.io.bytes_written);
        break;
      case 15:
        EXPECT_EQ(sum.io.bytes_read, a.io.bytes_read + b.io.bytes_read);
        break;
      case 16:
        EXPECT_EQ(sum.io.write_ops, a.io.write_ops + b.io.write_ops);
        break;
      case 17:
        EXPECT_EQ(sum.io.read_ops, a.io.read_ops + b.io.read_ops);
        break;
      case 18:
        EXPECT_EQ(sum.io.fsyncs, a.io.fsyncs + b.io.fsyncs);
        break;
      case 19:
        EXPECT_EQ(sum.flush_queue_depth,
                  a.flush_queue_depth + b.flush_queue_depth);
        break;
      case 20:
        EXPECT_EQ(sum.compact_queue_depth,
                  a.compact_queue_depth + b.compact_queue_depth);
        break;
      case 21:
        EXPECT_EQ(sum.subcompactions_run,
                  a.subcompactions_run + b.subcompactions_run);
        break;
      case 22:
        EXPECT_EQ(sum.rate_limiter_wait_micros,
                  a.rate_limiter_wait_micros + b.rate_limiter_wait_micros);
        break;
      case 23:
        EXPECT_EQ(sum.server_loop_iterations,
                  a.server_loop_iterations + b.server_loop_iterations);
        break;
      case 24:
        EXPECT_EQ(sum.server_writev_calls,
                  a.server_writev_calls + b.server_writev_calls);
        break;
      case 25:
        EXPECT_EQ(sum.server_responses_written,
                  a.server_responses_written + b.server_responses_written);
        break;
      case 26:  // high-water mark: max
        EXPECT_EQ(sum.server_output_buffer_hwm,
                  std::max(a.server_output_buffer_hwm,
                           b.server_output_buffer_hwm));
        break;
      case 27:
        EXPECT_EQ(sum.server_backpressure_stalls,
                  a.server_backpressure_stalls + b.server_backpressure_stalls);
        break;
      case 28:
        EXPECT_EQ(sum.server_accept_errors,
                  a.server_accept_errors + b.server_accept_errors);
        break;
      case 29:  // budgets sum: the aggregate is the cluster-wide rate
        EXPECT_EQ(sum.pacer_rate_bytes_per_sec,
                  a.pacer_rate_bytes_per_sec + b.pacer_rate_bytes_per_sec);
        break;
      case 30:
        EXPECT_EQ(sum.pacer_ingest_bytes_per_sec,
                  a.pacer_ingest_bytes_per_sec + b.pacer_ingest_bytes_per_sec);
        break;
      case 31:
        EXPECT_EQ(sum.pacer_retunes, a.pacer_retunes + b.pacer_retunes);
        break;
      case 32:
        EXPECT_EQ(sum.rate_limiter_paced_wall_micros,
                  a.rate_limiter_paced_wall_micros +
                      b.rate_limiter_paced_wall_micros);
        break;
      case 33:
        EXPECT_EQ(sum.compress_input_bytes,
                  a.compress_input_bytes + b.compress_input_bytes);
        break;
      case 34:
        EXPECT_EQ(sum.compress_stored_bytes,
                  a.compress_stored_bytes + b.compress_stored_bytes);
        break;
      case 35:
        EXPECT_EQ(sum.compress_columnar_blocks,
                  a.compress_columnar_blocks + b.compress_columnar_blocks);
        break;
      case 36:
        EXPECT_EQ(sum.compress_lz_blocks,
                  a.compress_lz_blocks + b.compress_lz_blocks);
        break;
      case 37:
        EXPECT_EQ(sum.compress_raw_fallback_blocks,
                  a.compress_raw_fallback_blocks +
                      b.compress_raw_fallback_blocks);
        break;
      case 38:
        EXPECT_EQ(sum.decompressed_blocks,
                  a.decompressed_blocks + b.decompressed_blocks);
        break;
      case 39:
        EXPECT_EQ(sum.decompress_micros,
                  a.decompress_micros + b.decompress_micros);
        break;
      case 40:  // gauge across shards: usages sum
        EXPECT_EQ(sum.compressed_cache_usage,
                  a.compressed_cache_usage + b.compressed_cache_usage);
        break;
      case 41:
        EXPECT_EQ(sum.compressed_cache_hits,
                  a.compressed_cache_hits + b.compressed_cache_hits);
        break;
      case 42:
        EXPECT_EQ(sum.compressed_cache_misses,
                  a.compressed_cache_misses + b.compressed_cache_misses);
        break;
      case 43:  // cluster-wide pool: budgets sum
        EXPECT_EQ(sum.arbiter_budget_bytes,
                  a.arbiter_budget_bytes + b.arbiter_budget_bytes);
        break;
      case 44:
        EXPECT_EQ(sum.arbiter_write_bytes,
                  a.arbiter_write_bytes + b.arbiter_write_bytes);
        break;
      case 45:
        EXPECT_EQ(sum.arbiter_read_bytes,
                  a.arbiter_read_bytes + b.arbiter_read_bytes);
        break;
      case 46:
        EXPECT_EQ(sum.arbiter_retunes, a.arbiter_retunes + b.arbiter_retunes);
        break;
      case 47:
        EXPECT_EQ(sum.arbiter_shifts, a.arbiter_shifts + b.arbiter_shifts);
        break;
      case 48:
        EXPECT_EQ(sum.mixed_level_retunes,
                  a.mixed_level_retunes + b.mixed_level_retunes);
        break;
      case 49:
        EXPECT_EQ(sum.multiget_batches,
                  a.multiget_batches + b.multiget_batches);
        break;
      case 50:
        EXPECT_EQ(sum.multiget_keys, a.multiget_keys + b.multiget_keys);
        break;
      case 51:
        EXPECT_EQ(sum.multiget_coalesced_reads,
                  a.multiget_coalesced_reads + b.multiget_coalesced_reads);
        break;
      case 52:
        EXPECT_EQ(sum.multiget_coalesced_blocks,
                  a.multiget_coalesced_blocks + b.multiget_coalesced_blocks);
        break;
      default:
        ADD_FAILURE() << "tag " << tag
                      << " has no aggregation coverage — a DbStats field "
                         "was added without extending this test and "
                         "operator+=";
    }
  }
}

TEST(DbStatsAggregationTest, WeightedAmpMatchesGroundTruth) {
  // Two instances with known written/user byte totals: combining their
  // ratios must equal the ratio of the combined totals.
  DbStats a;
  a.user_bytes = 1000;
  a.total_write_amp = 3.0;  // 3000 bytes written
  DbStats b;
  b.user_bytes = 3000;
  b.total_write_amp = 1.0;  // 3000 bytes written
  a += b;
  EXPECT_NEAR(a.total_write_amp, 6000.0 / 4000.0, 1e-9);
}

TEST(DbStatsAggregationTest, SelfAddDoublesCountersKeepsRatios) {
  DbStats s = MakeStats(9);
  const DbStats orig = s;
  s += s;
  EXPECT_EQ(s.user_bytes, 2 * orig.user_bytes);
  EXPECT_EQ(s.io.fsyncs, 2 * orig.io.fsyncs);
  EXPECT_EQ(s.mixed_level, orig.mixed_level);
  // Same traffic twice has the same amp.
  EXPECT_NEAR(s.total_write_amp, orig.total_write_amp, 1e-9);
}

TEST(DbStatsAggregationTest, AddToZeroIsIdentity) {
  DbStats zero;
  DbStats s = MakeStats(4);
  zero += s;
  EXPECT_EQ(zero.user_bytes, s.user_bytes);
  EXPECT_NEAR(zero.total_write_amp, s.total_write_amp, 1e-9);
  EXPECT_EQ(zero.level_bytes, s.level_bytes);
  EXPECT_EQ(zero.server_output_buffer_hwm, s.server_output_buffer_hwm);
}

}  // namespace
}  // namespace iamdb
