// LRU block cache tests: hit/miss behaviour, eviction order, capacity
// changes, concurrent access safety, and the allocation-free probe
// guarantee of the fixed 16-byte key type.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#include "table/cache.h"

// Global allocation counter for the zero-allocation-on-hit test.  Replacing
// operator new/delete is sanctioned by the standard; the counter only has to
// be monotone, not exact.
static std::atomic<uint64_t> g_allocations{0};

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace iamdb {
namespace {

BlockCacheKey K(uint64_t file, uint64_t offset = 0) {
  return BlockCacheKey{file, offset};
}

std::shared_ptr<const void> Val(int v) {
  return std::make_shared<const int>(v);
}

int Deref(const LruCache::ValuePtr& p) {
  return *static_cast<const int*>(p.get());
}

TEST(CacheTest, InsertLookup) {
  LruCache cache(1 << 20);
  cache.Insert(K(1), Val(1), 100);
  auto v = cache.Lookup(K(1));
  ASSERT_NE(nullptr, v);
  EXPECT_EQ(1, Deref(v));
  EXPECT_EQ(nullptr, cache.Lookup(K(999)));
}

TEST(CacheTest, KeyUsesBothWords) {
  LruCache cache(1 << 20);
  cache.Insert(K(1, 10), Val(1), 100);
  cache.Insert(K(1, 20), Val(2), 100);
  cache.Insert(K(2, 10), Val(3), 100);
  EXPECT_EQ(1, Deref(cache.Lookup(K(1, 10))));
  EXPECT_EQ(2, Deref(cache.Lookup(K(1, 20))));
  EXPECT_EQ(3, Deref(cache.Lookup(K(2, 10))));
  EXPECT_EQ(nullptr, cache.Lookup(K(2, 20)));
}

TEST(CacheTest, InsertReplaces) {
  LruCache cache(1 << 20);
  cache.Insert(K(1), Val(1), 100);
  cache.Insert(K(1), Val(2), 100);
  EXPECT_EQ(2, Deref(cache.Lookup(K(1))));
  EXPECT_EQ(100u, cache.usage());
}

TEST(CacheTest, InsertReplaceAdjustsCharge) {
  LruCache cache(1 << 20);
  cache.Insert(K(1), Val(1), 100);
  cache.Insert(K(1), Val(2), 250);
  EXPECT_EQ(250u, cache.usage());
  cache.Insert(K(1), Val(3), 50);
  EXPECT_EQ(50u, cache.usage());
}

TEST(CacheTest, EraseRemoves) {
  LruCache cache(1 << 20);
  cache.Insert(K(1), Val(1), 100);
  cache.Erase(K(1));
  EXPECT_EQ(nullptr, cache.Lookup(K(1)));
  EXPECT_EQ(0u, cache.usage());
  cache.Erase(K(1));  // double erase is a no-op
}

TEST(CacheTest, EvictionRespectsCapacity) {
  LruCache cache(16 * 100);  // 100 bytes per shard
  for (uint64_t i = 0; i < 1000; i++) {
    cache.Insert(K(i, i * 4096), Val(static_cast<int>(i)), 50);
  }
  EXPECT_LE(cache.usage(), 16u * 100u);
}

TEST(CacheTest, LruOrderWithinShard) {
  // All keys in one shard would need hash control; instead verify the
  // aggregate property: recently-used entries survive a pass of inserts.
  LruCache cache(16 * 150);
  cache.Insert(K(0), Val(42), 50);
  for (uint64_t round = 0; round < 100; round++) {
    ASSERT_NE(nullptr, cache.Lookup(K(0))) << "evicted at round " << round;
    cache.Insert(K(1000 + round), Val(static_cast<int>(round)), 50);
    cache.Lookup(K(0));  // keep promoting
  }
}

TEST(CacheTest, ValueLifetimeOutlivesEviction) {
  LruCache cache(16 * 60);
  auto pinned = Val(7);
  cache.Insert(K(1), pinned, 50);
  // Force eviction of K(1).
  for (uint64_t i = 0; i < 200; i++) {
    cache.Insert(K(100 + i), Val(static_cast<int>(i)), 50);
  }
  // The shared_ptr we kept is still valid.
  EXPECT_EQ(7, *static_cast<const int*>(pinned.get()));
}

TEST(CacheTest, HitMissCounters) {
  LruCache cache(1 << 20);
  cache.Insert(K(1), Val(1), 10);
  cache.Lookup(K(1));
  cache.Lookup(K(1));
  cache.Lookup(K(404));
  EXPECT_EQ(2u, cache.hits());
  EXPECT_EQ(1u, cache.misses());
}

TEST(CacheTest, SetCapacityShrinksUsage) {
  LruCache cache(1 << 20);
  for (uint64_t i = 0; i < 100; i++) {
    cache.Insert(K(i), Val(static_cast<int>(i)), 1000);
  }
  size_t before = cache.usage();
  EXPECT_GT(before, 50000u);
  cache.SetCapacity(16 * 1000);
  EXPECT_LE(cache.usage(), 16u * 1000u);
  EXPECT_EQ(16u * 1000u, cache.capacity());
}

TEST(CacheTest, ZeroCapacityHoldsNothing) {
  LruCache cache(0);
  cache.Insert(K(1), Val(1), 10);
  EXPECT_EQ(nullptr, cache.Lookup(K(1)));
}

TEST(CacheTest, LookupDoesNotAllocate) {
  LruCache cache(1 << 20);
  for (uint64_t i = 0; i < 64; i++) {
    cache.Insert(K(i, i * 4096), Val(static_cast<int>(i)), 100);
  }
  // Warm up any lazy internals (hash table growth is done by now).
  for (uint64_t i = 0; i < 64; i++) {
    ASSERT_NE(nullptr, cache.Lookup(K(i, i * 4096)));
  }
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < 64; i++) {
    auto v = cache.Lookup(K(i, i * 4096));       // hit
    ASSERT_NE(nullptr, v);
    EXPECT_EQ(nullptr, cache.Lookup(K(i, 7)));   // miss
  }
  EXPECT_EQ(before, g_allocations.load(std::memory_order_relaxed))
      << "Lookup must be allocation-free on both hits and misses";
}

TEST(CacheTest, ConcurrentMixedOperations) {
  LruCache cache(1 << 16);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&cache, &failed, t] {
      for (int i = 0; i < 5000; i++) {
        BlockCacheKey key = K((t * 31 + i) % 500, 4096);
        if (i % 3 == 0) {
          cache.Insert(key, Val(i), 64);
        } else if (i % 7 == 0) {
          cache.Erase(key);
        } else {
          auto v = cache.Lookup(key);
          if (v != nullptr && Deref(v) < 0) failed = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed);
  EXPECT_LE(cache.usage(), static_cast<size_t>(1 << 16));
}

TEST(CacheTest, ConcurrentSetCapacity) {
  // SetCapacity racing readers/writers: TSAN guard for the atomic
  // capacity_ member (previously a plain size_t written without a lock).
  LruCache cache(1 << 16);
  std::atomic<bool> done{false};
  std::thread resizer([&] {
    for (int i = 0; i < 2000; i++) {
      cache.SetCapacity((i % 2 == 0) ? (1 << 16) : (1 << 12));
    }
    done = true;
  });
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      size_t c = cache.capacity();
      if (c != (1u << 16) && c != (1u << 12)) {
        ADD_FAILURE() << "torn capacity read: " << c;
        break;
      }
      cache.Insert(K(1), Val(1), 64);
      cache.Lookup(K(1));
    }
  });
  resizer.join();
  reader.join();
}

TEST(CacheTest, ConcurrentShrinkEvictsUnderTraffic) {
  // The memory arbiter's move: SetCapacity shrinking (and evicting down to
  // the new per-shard budgets) while reader/writer threads keep the shards
  // hot.  TSAN guard for the eviction path racing Lookup's list splice and
  // Insert's charge accounting; the invariant afterwards is that usage
  // settled under the final capacity once traffic stops.
  LruCache cache(1 << 18);
  std::atomic<bool> done{false};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 4; t++) {
    traffic.emplace_back([&cache, &done, t] {
      uint64_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        BlockCacheKey key = K((t * 131 + i) % 800, 4096);
        if (i % 2 == 0) {
          cache.Insert(key, Val(static_cast<int>(i)), 256);
        } else {
          auto v = cache.Lookup(key);
          if (v != nullptr && Deref(v) < 0) {
            ADD_FAILURE() << "corrupt value under resize";
            break;
          }
        }
        i++;
      }
    });
  }
  for (int round = 0; round < 500; round++) {
    // Alternate grow/shrink, ending on the small capacity: the final
    // shrink must evict even though inserts race it.
    cache.SetCapacity((round % 2 == 0) ? (1 << 13) : (1 << 18));
  }
  cache.SetCapacity(1 << 13);
  done = true;
  for (auto& t : traffic) t.join();
  // Quiesced: one more authoritative shrink (no racing inserts now) must
  // leave usage within budget — SetCapacity itself evicts, no traffic
  // needed to trigger it.
  cache.SetCapacity(1 << 13);
  EXPECT_LE(cache.usage(), static_cast<size_t>(1 << 13));
  EXPECT_EQ(static_cast<size_t>(1 << 13), cache.capacity());
}

}  // namespace
}  // namespace iamdb
