// LRU block cache tests: hit/miss behaviour, eviction order, capacity
// changes, and concurrent access safety.
#include <gtest/gtest.h>

#include <thread>

#include "table/cache.h"

namespace iamdb {
namespace {

std::shared_ptr<const void> Val(int v) {
  return std::make_shared<const int>(v);
}

int Deref(const LruCache::ValuePtr& p) {
  return *static_cast<const int*>(p.get());
}

TEST(CacheTest, InsertLookup) {
  LruCache cache(1 << 20);
  cache.Insert("a", Val(1), 100);
  auto v = cache.Lookup("a");
  ASSERT_NE(nullptr, v);
  EXPECT_EQ(1, Deref(v));
  EXPECT_EQ(nullptr, cache.Lookup("missing"));
}

TEST(CacheTest, InsertReplaces) {
  LruCache cache(1 << 20);
  cache.Insert("a", Val(1), 100);
  cache.Insert("a", Val(2), 100);
  EXPECT_EQ(2, Deref(cache.Lookup("a")));
  EXPECT_EQ(100u, cache.usage());
}

TEST(CacheTest, EraseRemoves) {
  LruCache cache(1 << 20);
  cache.Insert("a", Val(1), 100);
  cache.Erase("a");
  EXPECT_EQ(nullptr, cache.Lookup("a"));
  EXPECT_EQ(0u, cache.usage());
  cache.Erase("a");  // double erase is a no-op
}

TEST(CacheTest, EvictionRespectsCapacity) {
  // Single-shard behaviour via keys that hash anywhere; capacity small.
  LruCache cache(16 * 100);  // 100 bytes per shard
  for (int i = 0; i < 1000; i++) {
    cache.Insert("key" + std::to_string(i), Val(i), 50);
  }
  EXPECT_LE(cache.usage(), 16u * 100u);
}

TEST(CacheTest, LruOrderWithinShard) {
  // All keys in one shard would need hash control; instead verify the
  // aggregate property: recently-used entries survive a pass of inserts.
  LruCache cache(16 * 150);
  cache.Insert("hot", Val(42), 50);
  for (int round = 0; round < 100; round++) {
    ASSERT_NE(nullptr, cache.Lookup("hot")) << "evicted at round " << round;
    cache.Insert("cold" + std::to_string(round), Val(round), 50);
    cache.Lookup("hot");  // keep promoting
  }
}

TEST(CacheTest, ValueLifetimeOutlivesEviction) {
  LruCache cache(16 * 60);
  auto pinned = Val(7);
  cache.Insert("a", pinned, 50);
  // Force eviction of "a".
  for (int i = 0; i < 200; i++) {
    cache.Insert("b" + std::to_string(i), Val(i), 50);
  }
  // The shared_ptr we kept is still valid.
  EXPECT_EQ(7, *static_cast<const int*>(pinned.get()));
}

TEST(CacheTest, HitMissCounters) {
  LruCache cache(1 << 20);
  cache.Insert("a", Val(1), 10);
  cache.Lookup("a");
  cache.Lookup("a");
  cache.Lookup("nope");
  EXPECT_EQ(2u, cache.hits());
  EXPECT_EQ(1u, cache.misses());
}

TEST(CacheTest, SetCapacityShrinksUsage) {
  LruCache cache(1 << 20);
  for (int i = 0; i < 100; i++) {
    cache.Insert("k" + std::to_string(i), Val(i), 1000);
  }
  size_t before = cache.usage();
  EXPECT_GT(before, 50000u);
  cache.SetCapacity(16 * 1000);
  EXPECT_LE(cache.usage(), 16u * 1000u);
}

TEST(CacheTest, ZeroCapacityHoldsNothing) {
  LruCache cache(0);
  cache.Insert("a", Val(1), 10);
  EXPECT_EQ(nullptr, cache.Lookup("a"));
}

TEST(CacheTest, ConcurrentMixedOperations) {
  LruCache cache(1 << 16);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&cache, &failed, t] {
      for (int i = 0; i < 5000; i++) {
        std::string key = "k" + std::to_string((t * 31 + i) % 500);
        if (i % 3 == 0) {
          cache.Insert(key, Val(i), 64);
        } else if (i % 7 == 0) {
          cache.Erase(key);
        } else {
          auto v = cache.Lookup(key);
          if (v != nullptr && Deref(v) < 0) failed = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed);
  EXPECT_LE(cache.usage(), static_cast<size_t>(1 << 16));
}

}  // namespace
}  // namespace iamdb
