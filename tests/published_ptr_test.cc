// Tests for PublishedPtr, the epoch-reclaimed published pointer behind the
// lock-free read path (DBImpl::read_view_, the engines' current_).
#include "util/published_ptr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "test_seed.h"

namespace iamdb {
namespace {

struct Tracked {
  explicit Tracked(uint64_t v) : value(v) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
  uint64_t value;
  static std::atomic<int> live;
};
std::atomic<int> Tracked::live{0};

TEST(PublishedPtrTest, InitialValueAndStore) {
  PublishedPtr<Tracked> p(std::make_shared<Tracked>(1));
  EXPECT_EQ(p.Acquire()->value, 1u);
  EXPECT_EQ(p.Snapshot()->value, 1u);
  p.Store(std::make_shared<Tracked>(2));
  EXPECT_EQ(p.Acquire()->value, 2u);
}

TEST(PublishedPtrTest, NullInitial) {
  PublishedPtr<Tracked> p;
  EXPECT_EQ(p.Acquire().get(), nullptr);
  EXPECT_EQ(p.Snapshot(), nullptr);
  p.Store(std::make_shared<Tracked>(7));
  EXPECT_EQ(p.Acquire()->value, 7u);
}

TEST(PublishedPtrTest, SnapshotOutlivesStore) {
  PublishedPtr<Tracked> p(std::make_shared<Tracked>(1));
  std::shared_ptr<Tracked> pinned = p.Snapshot();
  for (uint64_t i = 2; i < 10; i++) p.Store(std::make_shared<Tracked>(i));
  EXPECT_EQ(pinned->value, 1u);  // real refcount: survives any reclamation
  EXPECT_EQ(p.Acquire()->value, 9u);
}

TEST(PublishedPtrTest, QuiescentStoresReclaimEagerly) {
  {
    PublishedPtr<Tracked> p(std::make_shared<Tracked>(0));
    // With no readers in any epoch, each Store can prove both banks
    // drained and free the superseded value after at most one extra round.
    for (uint64_t i = 1; i <= 100; i++) {
      p.Store(std::make_shared<Tracked>(i));
      EXPECT_LE(p.retired_count(), 1u);
      EXPECT_LE(Tracked::live.load(), 2);
    }
  }
  EXPECT_EQ(Tracked::live.load(), 0);  // destructor frees everything
}

TEST(PublishedPtrTest, GuardBlocksReclamation) {
  PublishedPtr<Tracked> p(std::make_shared<Tracked>(1));
  // A reader parked in an epoch pins every value retired after it entered.
  std::atomic<bool> entered{false}, release{false};
  std::atomic<uint64_t> seen{0};
  std::thread reader([&] {
    auto g = p.Acquire();
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    seen.store(g->value);  // still valid despite concurrent stores
  });
  while (!entered.load()) std::this_thread::yield();
  for (uint64_t i = 2; i <= 5; i++) p.Store(std::make_shared<Tracked>(i));
  EXPECT_GE(Tracked::live.load(), 2);  // reader's value not freed
  release.store(true);
  reader.join();
  EXPECT_EQ(seen.load(), 1u);
  p.Store(std::make_shared<Tracked>(6));  // collect now that banks drain
  p.Store(std::make_shared<Tracked>(7));
  EXPECT_LE(p.retired_count(), 1u);
}

// Readers hammer Acquire/Snapshot while a writer stores a monotonically
// increasing sequence of values; every observed value must be one the
// writer actually published (no torn/posthumous reads) and per-thread
// observations must be monotone (publication order is respected).
TEST(PublishedPtrTest, ConcurrentReadersSeeMonotonePublishedValues) {
  const uint64_t seed = test::TestSeed(0xEB0C);
  SCOPED_TRACE(test::SeedTrace(seed));
  const int kReaders = 4;
  const uint64_t kStores = 20000;

  PublishedPtr<Tracked> p(std::make_shared<Tracked>(0));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      uint64_t last = 0;
      uint64_t iters = 0;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t v;
        if (((r + iters++) & 1) == 0) {
          v = p.Acquire()->value;
        } else {
          v = p.Snapshot()->value;
        }
        ASSERT_LE(v, kStores);   // never a value the writer hasn't made
        ASSERT_GE(v, last);      // publication order, per thread
        last = v;
      }
    });
  }
  for (uint64_t i = 1; i <= kStores; i++) {
    p.Store(std::make_shared<Tracked>(i));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(p.Acquire()->value, kStores);
  // All readers gone: one more pair of stores proves both banks empty and
  // drains the retired list to at most the immediately superseded value.
  p.Store(std::make_shared<Tracked>(kStores));
  p.Store(std::make_shared<Tracked>(kStores));
  EXPECT_LE(p.retired_count(), 1u);
  EXPECT_LE(Tracked::live.load(), 2);
}

}  // namespace
}  // namespace iamdb
